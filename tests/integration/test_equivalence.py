"""Integration: latency equivalence across many elaborated topologies.

This is the paper's safety definition exercised at system scale: for
every topology family, under back pressure and bursty sources, the LID
system's valid-token streams must project onto the zero-latency
reference streams.
"""

import pytest

from repro.graph import (
    composed,
    figure1,
    figure2,
    loop_with_tail,
    pipeline,
    random_dag,
    random_loopy,
    reconvergent,
    self_loop,
    tree,
)
from repro.lid.reference import is_prefix
from repro.lid.token import Token, VOID
from repro.lid.variant import ProtocolVariant

TOPOLOGIES = [
    ("pipeline", lambda: pipeline(3, relays_per_hop=2)),
    ("tree", lambda: tree(2)),
    ("figure1", figure1),
    ("figure2", figure2),
    ("reconv_deep", lambda: reconvergent(long_relays=(2, 2),
                                         short_relays=1)),
    ("self_loop", lambda: self_loop(relays=2)),
    ("loop_with_tail", loop_with_tail),
    ("composed", composed),
]


def check_equivalence(graph, cycles=80, variant=ProtocolVariant.CASU,
                      progress_floor=1):
    system = graph.elaborate(variant=variant)
    system.run(cycles)
    reference = system.reference_outputs(cycles)
    for name, sink in system.sinks.items():
        assert is_prefix(sink.payloads, reference[name]), name
        assert len(sink.payloads) >= progress_floor, name


class TestTopologyFamilies:
    @pytest.mark.parametrize("name,builder", TOPOLOGIES)
    def test_casu(self, name, builder):
        check_equivalence(builder())

    @pytest.mark.parametrize("name,builder", TOPOLOGIES)
    def test_carloni(self, name, builder):
        check_equivalence(builder(), variant=ProtocolVariant.CARLONI)


class TestRandomTopologies:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_dags(self, seed):
        check_equivalence(random_dag(seed, shells=5))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_loopy(self, seed):
        check_equivalence(random_loopy(seed, shells=4))

    @pytest.mark.parametrize("seed", range(3))
    def test_random_dags_with_half_relays(self, seed):
        check_equivalence(random_dag(seed, shells=5,
                                     half_probability=0.5))


class TestUnderStress:
    def test_heavy_backpressure(self):
        graph = figure1()
        graph.nodes["out"].stop_script = lambda c: c % 3 != 0
        check_equivalence(graph, cycles=120)

    def test_bursty_source(self):
        def gappy():
            return iter(
                Token(v) if v % 3 else VOID for v in range(200)
            )

        graph = pipeline(3)
        graph.nodes["src"].stream_factory = gappy
        system = graph.elaborate()
        system.run(60)
        ref = system.reference_outputs(60)
        for name, sink in system.sinks.items():
            assert is_prefix(sink.payloads, ref[name])

    def test_long_run_stability(self):
        check_equivalence(composed(), cycles=600, progress_floor=100)

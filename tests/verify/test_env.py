"""Tests for the verification environments."""

from repro.verify.env import (
    PAYLOAD_MODULUS,
    CooperativeDownstream,
    DownstreamState,
    EagerUpstream,
    UpstreamState,
)


class TestUpstream:
    def test_free_choice_initially(self):
        up = UpstreamState()
        assert up.choices() == [None, 0]

    def test_committed_must_resend(self):
        up = UpstreamState().after(0, stop_out=True)
        assert up.committed
        assert up.choices() == [0]

    def test_advance_on_acceptance(self):
        up = UpstreamState().after(0, stop_out=False)
        assert up.k == 1 and not up.committed

    def test_void_does_not_advance(self):
        up = UpstreamState().after(None, stop_out=False)
        assert up.k == 0

    def test_wraparound(self):
        up = UpstreamState(k=PAYLOAD_MODULUS - 1)
        assert up.after(up.k, False).k == 0

    def test_hold_then_release(self):
        up = UpstreamState()
        up = up.after(0, True)   # stopped: hold
        up = up.after(0, True)   # still stopped
        assert up.k == 0
        up = up.after(0, False)  # finally accepted
        assert up.k == 1 and not up.committed


class TestDownstream:
    def test_arbitrary_choices(self):
        assert DownstreamState.choices() == (False, True)

    def test_cooperative_never_stops(self):
        assert CooperativeDownstream.choices() == (False,)


class TestEagerUpstream:
    def test_always_offers(self):
        up = EagerUpstream()
        assert up.choices() == [0]

    def test_advances_on_acceptance(self):
        up = EagerUpstream().after(0, stop_out=False)
        assert up.k == 1

    def test_holds_on_stop(self):
        up = EagerUpstream().after(0, stop_out=True)
        assert up.k == 0

"""High-level container for building and running LID systems.

:class:`LidSystem` wraps a :class:`~repro.kernel.scheduler.Simulator`
and offers the vocabulary of the paper: add shells around pearls, add
sources/sinks at the primary I/Os, and connect ports with channels that
carry a configurable chain of relay stations.  ``connect(..., relays=2)``
inserts two full relay stations, i.e. a wire whose traversal takes two
extra clock cycles — exactly how the paper models long interconnect.

The container also exposes the *zero-latency reference run* used by the
latency-equivalence tests: the same pearls wired with ideal channels and
no protocol (see :meth:`reference_outputs`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from ..errors import StructuralError
from ..kernel.scheduler import Simulator
from ..kernel.trace import Trace
from .channel import Channel
from .endpoints import Sink, Source
from .relay import HalfRelayStation, RelayStation, _RelayBase
from .shell import Shell
from .token import Token
from .variant import DEFAULT_VARIANT, ProtocolVariant

#: Specification of one relay station in a channel chain.
#: "full" -> RelayStation; "half" -> HalfRelayStation;
#: "half-registered" -> the registered-stop ablation variant.
RelaySpec = str


class LidSystem:
    """A latency-insensitive system under construction / simulation."""

    def __init__(self, name: str = "lid",
                 variant: ProtocolVariant = DEFAULT_VARIANT):
        self.name = name
        self.variant = variant
        self.sim = Simulator(name)
        self.shells: Dict[str, Shell] = {}
        self.sources: Dict[str, Source] = {}
        self.sinks: Dict[str, Sink] = {}
        self.relays: Dict[str, _RelayBase] = {}
        self.channels: List[Channel] = []
        self._finalized = False
        self._channel_counter = 0
        self.telemetry = None

    # -- block creation ----------------------------------------------------

    def add_shell(self, name: str, pearl) -> Shell:
        self._check_fresh_name(name)
        shell = Shell(name, pearl, variant=self.variant)
        self.shells[name] = shell
        self.sim.add_component(shell)
        return shell

    def add_queued_shell(self, name: str, pearl,
                         queue_depth: int = 2) -> Shell:
        """A shell with input FIFOs and registered stop (see
        :class:`~repro.lid.queued_shell.QueuedShell`)."""
        from .queued_shell import QueuedShell

        self._check_fresh_name(name)
        shell = QueuedShell(name, pearl, variant=self.variant,
                            queue_depth=queue_depth)
        self.shells[name] = shell
        self.sim.add_component(shell)
        return shell

    def add_source(self, name: str,
                   stream: Optional[Iterator[Token]] = None) -> Source:
        self._check_fresh_name(name)
        source = Source(name, stream=stream, variant=self.variant)
        self.sources[name] = source
        self.sim.add_component(source)
        return source

    def add_sink(self, name: str, stop_script=None) -> Sink:
        self._check_fresh_name(name)
        sink = Sink(name, stop_script=stop_script, variant=self.variant)
        self.sinks[name] = sink
        self.sim.add_component(sink)
        return sink

    def _check_fresh_name(self, name: str) -> None:
        if name in self.shells or name in self.sources or name in self.sinks \
                or name in self.relays:
            raise StructuralError(f"duplicate block name {name!r}")

    # -- wiring --------------------------------------------------------------

    def _new_channel(self, label: str) -> Channel:
        self._channel_counter += 1
        chan = Channel.create(self.sim, f"{label}#{self._channel_counter}")
        self.channels.append(chan)
        return chan

    def _make_relay(self, spec: RelaySpec, name: str) -> _RelayBase:
        if spec == "full":
            relay: _RelayBase = RelayStation(name, variant=self.variant)
        elif spec == "half":
            relay = HalfRelayStation(name, variant=self.variant)
        elif spec == "half-registered":
            relay = HalfRelayStation(name, variant=self.variant,
                                     registered_stop=True)
        else:
            from ..graph.model import validate_relay_spec

            validate_relay_spec(spec, where=f"relay {name}")  # raises
            raise StructuralError(f"unknown relay spec {spec!r}")
        self.relays[name] = relay
        self.sim.add_component(relay)
        return relay

    def connect(
        self,
        producer: Union[Shell, Source],
        consumer: Union[Shell, Sink],
        producer_port: Optional[str] = None,
        consumer_port: Optional[str] = None,
        relays: Union[int, Sequence[RelaySpec]] = 0,
    ) -> List[Channel]:
        """Connect two blocks through a chain of relay stations.

        *relays* is either an integer (that many **full** relay
        stations) or an explicit sequence of specs drawn from
        ``"full"``, ``"half"`` and ``"half-registered"``, listed from
        producer to consumer.  Returns the created channels, producer
        side first.
        """
        if isinstance(relays, int):
            specs: List[RelaySpec] = ["full"] * relays
        else:
            specs = list(relays)

        label = f"{producer.name}->{consumer.name}"
        chain: List[Channel] = [self._new_channel(label)]
        self._bind_producer(producer, producer_port, chain[0])

        for index, spec in enumerate(specs):
            relay_name = f"{label}.rs{index}#{self._channel_counter}"
            relay = self._make_relay(spec, relay_name)
            next_chan = self._new_channel(label)
            relay.connect(chain[-1], next_chan)
            chain.append(next_chan)

        self._bind_consumer(consumer, consumer_port, chain[-1])
        return chain

    def _bind_producer(self, block, port: Optional[str], chan: Channel) -> None:
        if isinstance(block, Shell):
            if port is None:
                ports = list(block.pearl.output_ports)
                if len(ports) != 1:
                    raise StructuralError(
                        f"{block.name}: producer_port required "
                        f"(outputs: {ports})"
                    )
                port = ports[0]
            block.connect_output(port, chan)
        elif isinstance(block, Source):
            block.connect(chan)
        else:
            raise StructuralError(
                f"{block!r} cannot drive a channel (need Shell or Source)"
            )

    def _bind_consumer(self, block, port: Optional[str], chan: Channel) -> None:
        if isinstance(block, Shell):
            if port is None:
                ports = list(block.pearl.input_ports)
                if len(ports) != 1:
                    raise StructuralError(
                        f"{block.name}: consumer_port required "
                        f"(inputs: {ports})"
                    )
                port = ports[0]
            block.connect_input(port, chan)
        elif isinstance(block, Sink):
            block.connect(chan)
        else:
            raise StructuralError(
                f"{block!r} cannot consume a channel (need Shell or Sink)"
            )

    # -- execution -----------------------------------------------------------

    def finalize(self, strict: bool = True) -> None:
        """Check wiring and run the structural lint.

        With ``strict=True`` (default) the lint enforces the paper's
        implementation rules: at least one relay station between any two
        shells, and no combinational stop cycles.
        """
        for block in self._all_blocks():
            block.check_wiring()
        if strict:
            from .lint import lint_system

            lint_system(self)
        self._finalized = True

    def _all_blocks(self):
        for group in (self.shells, self.sources, self.sinks, self.relays):
            yield from group.values()

    def run(self, cycles: int, reset: bool = True) -> None:
        """Simulate for *cycles* clock cycles (finalizing lazily)."""
        if not self._finalized:
            self.finalize()
        if reset:
            self.sim.reset()
        self.sim.step(cycles)

    def trace(self, signal_names: Iterable[str]) -> Trace:
        """Attach a trace to named signals (before calling :meth:`run`)."""
        return Trace(self.sim, signal_names)

    def trace_channels(self, channels: Iterable[Channel]) -> Trace:
        """Attach a trace covering data/valid/stop of the given channels."""
        signals = []
        for chan in channels:
            signals.extend([chan.data, chan.valid, chan.stop])
        return Trace(self.sim, signals)

    # -- telemetry --------------------------------------------------------------

    def attach_telemetry(self, telemetry) -> "LidSystem":
        """Wire a :class:`~repro.obs.Telemetry` through the whole system.

        * the kernel profiler receives per-phase wall times;
        * shells/sinks emit ``token`` events, relay stations emit
          ``relay/occupancy`` events, monitors emit
          ``monitor/violation`` events (all via the simulator handle);
        * a sampling hook accumulates per-channel stall cycles and
          per-relay occupancy histograms into the metrics registry and
          traces ``stall/assert`` events.

        Attach before :meth:`run`; returns ``self`` for chaining.
        """
        self.telemetry = telemetry
        self.sim.attach_telemetry(telemetry)
        if telemetry.metrics is not None or telemetry.events is not None:
            self.sim.add_cycle_hook(self._sample_telemetry)
        return self

    def _sample_telemetry(self, sim: Simulator) -> None:
        """Cycle hook: sample settled stop wires and relay fill levels."""
        telemetry = self.telemetry
        metrics = telemetry.metrics
        events = telemetry.events
        for chan in self.channels:
            if chan.stop.value:
                if metrics is not None:
                    metrics.counter(
                        f"lid/channel/{chan.name}/stall_cycles").inc()
                if events is not None:
                    events.emit("stall", "assert", sim.cycle,
                                channel=chan.name,
                                valid=bool(chan.valid.value))
        if metrics is not None:
            for name, relay in self.relays.items():
                metrics.histogram(
                    f"lid/relay/{name}/occupancy").observe(
                        relay.occupancy)

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Deterministic metrics snapshot of the run so far.

        Folds the live block counters (shell fires and rates, sink
        deliveries, settle passes) into the attached registry — or a
        fresh one when no telemetry is attached — and returns
        :meth:`~repro.obs.MetricsRegistry.snapshot`.
        """
        from ..obs import MetricsRegistry

        registry = (self.telemetry.metrics
                    if self.telemetry is not None
                    and self.telemetry.metrics is not None
                    else MetricsRegistry())
        cycles = self.sim.cycle
        registry.gauge("lid/cycles").set(cycles)
        registry.gauge("lid/settle_passes").set(
            self.sim.settle_passes_total)
        for name, shell in self.shells.items():
            registry.gauge(f"lid/shell/{name}/fires").set(
                shell.fire_count)
            registry.gauge(f"lid/shell/{name}/fire_rate").set(
                shell.fire_count / cycles if cycles else 0.0)
        for name, sink in self.sinks.items():
            registry.gauge(f"lid/sink/{name}/accepts").set(
                len(sink.received))
        return registry.snapshot()

    # -- reference model -------------------------------------------------------

    def reference_outputs(self, cycles: int) -> Dict[str, List[Any]]:
        """Run the zero-latency reference system and return sink payloads.

        The reference wires the same pearls together with ideal
        channels: every module fires every cycle and sources never run
        dry; this is Carloni's *strictly synchronous* base system.  The
        LID system is correct iff, per sink, its valid-payload stream is
        a prefix-equal projection of this reference stream (latency
        equivalence).  The reference is rebuilt from the recorded
        wiring, so call it on a fully connected system only.
        """
        from .reference import run_reference

        return run_reference(self, cycles)

    # -- metrics ----------------------------------------------------------------

    def sink_throughputs(self, cycles: int, warmup: int = 0) -> Dict[str, float]:
        return {
            name: sink.steady_throughput(warmup, cycles)
            for name, sink in self.sinks.items()
        }

    def stats(self) -> Dict[str, Any]:
        """Run summary: firings, deliveries, occupancies, settle cost.

        Call after :meth:`run`; the dictionary is JSON-compatible and
        convenient for experiment logs.
        """
        cycles = self.sim.cycle
        relay_occupancy = {
            name: relay.occupancy for name, relay in self.relays.items()
        }
        return {
            "cycles": cycles,
            "shell_firings": {
                name: shell.fire_count
                for name, shell in self.shells.items()
            },
            "shell_utilization": {
                name: (shell.fire_count / cycles if cycles else 0.0)
                for name, shell in self.shells.items()
            },
            "sink_deliveries": {
                name: len(sink.received)
                for name, sink in self.sinks.items()
            },
            "relay_occupancy": relay_occupancy,
            "buffered_tokens": sum(relay_occupancy.values()),
            "settle_passes": self.sim.settle_passes_total,
            "settle_passes_per_cycle": (
                self.sim.settle_passes_total / cycles if cycles else 0.0
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LidSystem({self.name!r}, shells={len(self.shells)}, "
            f"relays={len(self.relays)}, sources={len(self.sources)}, "
            f"sinks={len(self.sinks)})"
        )

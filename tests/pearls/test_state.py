"""Unit tests for stateful pearls."""

import pytest

from repro.pearls import Accumulator, Counter, Delay, Fibonacci, History, Toggle


class TestCounter:
    def test_counts_firings(self):
        pearl = Counter()
        assert pearl.reset() == {"out": 0}
        assert pearl.step({"en": 1}) == {"out": 1}
        assert pearl.step({"en": 1}) == {"out": 2}

    def test_stride_and_start(self):
        pearl = Counter(start=10, stride=5)
        assert pearl.reset() == {"out": 10}
        assert pearl.step({"en": 0}) == {"out": 15}

    def test_reset_restarts(self):
        pearl = Counter()
        pearl.reset()
        pearl.step({"en": 1})
        assert pearl.reset() == {"out": 0}


class TestAccumulator:
    def test_running_sum(self):
        pearl = Accumulator()
        pearl.reset()
        outs = [pearl.step({"a": v})["out"] for v in (1, 2, 3, 4)]
        assert outs == [1, 3, 6, 10]

    def test_initial(self):
        pearl = Accumulator(initial=100)
        pearl.reset()
        assert pearl.step({"a": 1}) == {"out": 101}


class TestDelay:
    def test_single_stage(self):
        # out[n] = a[n-1]: the first step still shows the fill value.
        pearl = Delay(stages=1, fill=0)
        assert pearl.reset() == {"out": 0}
        assert pearl.step({"a": 5}) == {"out": 0}
        assert pearl.step({"a": 6}) == {"out": 5}

    def test_three_stages(self):
        pearl = Delay(stages=3, fill=0)
        pearl.reset()
        outs = [pearl.step({"a": v})["out"] for v in (1, 2, 3, 4, 5)]
        assert outs == [0, 0, 0, 1, 2]

    def test_zero_stages_rejected(self):
        with pytest.raises(ValueError):
            Delay(stages=0)


class TestToggle:
    def test_alternates(self):
        pearl = Toggle(first="a", second="b")
        assert pearl.reset() == {"out": "a"}
        assert pearl.step({"en": 1}) == {"out": "b"}
        assert pearl.step({"en": 1}) == {"out": "a"}


class TestHistory:
    def test_records_consumed(self):
        pearl = History()
        pearl.reset()
        pearl.step({"a": 1})
        pearl.step({"a": 2})
        assert pearl.seen == [1, 2]

    def test_reset_clears(self):
        pearl = History()
        pearl.reset()
        pearl.step({"a": 1})
        pearl.reset()
        assert pearl.seen == []

    def test_echoes_input(self):
        pearl = History()
        pearl.reset()
        assert pearl.step({"a": 9}) == {"out": 9}


class TestFibonacci:
    def test_seed_presented_at_reset(self):
        pearl = Fibonacci(seed=3)
        assert pearl.reset() == {"out": 3}

    def test_recurrence(self):
        pearl = Fibonacci(seed=1)
        pearl.reset()
        out1 = pearl.step({"loop_in": 1, "ext": 0})["out"]
        assert out1 == 2  # loop + ext + prev = 1 + 0 + 1
        out2 = pearl.step({"loop_in": out1, "ext": 0})["out"]
        assert out2 == 2 + 0 + 1

"""Picklable graph references for cross-process simulation.

A :class:`~repro.graph.model.SystemGraph` frequently holds closures —
pearl factories, sink stop scripts written as lambdas — so the graph
object itself often cannot cross a process boundary.  A
:class:`GraphRef` is the picklable *recipe* instead of the dish; each
worker process rebuilds (and memoizes) the graph from it:

* ``from_spec("ring:shells=3,relays=2", seed=7)`` — a topology spec
  string, rebuilt via :func:`repro.graph.specs.parse_topology` (the
  normal route for everything launched from ``repro-lid``);
* ``from_factory("repro.graph:figure2", relays_per_arc=2)`` — a
  module-level factory plus keyword arguments;
* ``from_graph(graph)`` — a pickle payload, for graphs that happen to
  be picklable (no lambdas); raises
  :class:`~repro.errors.ExecutionError` with a pointer to the other
  two constructors when they are not.

By-value refs carry the behavioural graph fingerprint
(:func:`repro.exec.cache.graph_fingerprint`, built on the canonical IR
structural fingerprint) and compare equal by it — two independently
pickled but structurally and behaviourally identical graphs are the
same reference, share the worker-side memo, and hit the same cache
entries.  Pickle bytes never participate in identity.

Rebuilding is deterministic (topology factories are pure functions of
their arguments plus the seed), so every worker sees the same graph
the parent described — the foundation of the jobs-invariant reports
contract in ``docs/parallelism.md``.
"""

from __future__ import annotations

import dataclasses
import pickle
from typing import Any, Dict, Optional, Tuple

from ..errors import ExecutionError
from ..graph.model import SystemGraph

#: Per-process memo: materialized graphs by reference.  Workers are
#: short-lived relative to campaign size, so this never needs eviction.
_MATERIALIZED: Dict["GraphRef", SystemGraph] = {}


@dataclasses.dataclass(frozen=True, eq=False)
class GraphRef:
    """Picklable recipe for rebuilding a system graph in a worker.

    Identity (``__eq__``/``__hash__``) covers the recipe — spec, seed,
    factory, kwargs and the content fingerprint — but *not* the pickle
    payload bytes, which vary with declaration order and memo state.
    """

    spec: Optional[str] = None
    seed: int = 0
    factory: Optional[str] = None
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    payload: Optional[bytes] = None
    #: Behavioural fingerprint of by-value graphs (see
    #: :func:`repro.exec.cache.graph_fingerprint`); ``None`` for
    #: spec/factory refs, whose identity is the recipe itself.
    fingerprint: Optional[str] = None

    def _identity(self) -> Tuple:
        content = self.fingerprint if self.fingerprint is not None \
            else self.payload
        return (self.spec, self.seed, self.factory, self.kwargs, content)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphRef):
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "GraphRef":
        """Reference a topology spec string (``"figure2"``, ``"dag:..."``)."""
        return cls(spec=spec, seed=seed)

    @classmethod
    def from_factory(cls, factory: str, **kwargs: Any) -> "GraphRef":
        """Reference a ``"module:qualname"`` factory plus kwargs."""
        return cls(factory=factory,
                   kwargs=tuple(sorted(kwargs.items())))

    @classmethod
    def from_graph(cls, graph: SystemGraph) -> "GraphRef":
        """Capture a picklable graph by value.

        Graphs built by the stock topology factories hold lambdas and
        are *not* picklable; for those, use :meth:`from_spec` /
        :meth:`from_factory` so workers rebuild the graph instead.
        """
        try:
            payload = pickle.dumps(graph, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise ExecutionError(
                f"graph {graph.name!r} is not picklable ({exc}); pass a "
                f"GraphRef.from_spec(...) or GraphRef.from_factory(...) "
                f"so worker processes can rebuild it") from exc
        from .cache import graph_fingerprint

        return cls(payload=payload, fingerprint=graph_fingerprint(graph))

    def materialize(self) -> SystemGraph:
        """Build (or fetch the memoized) graph in this process."""
        graph = _MATERIALIZED.get(self)
        if graph is not None:
            return graph
        if self.spec is not None:
            from ..graph.specs import parse_topology

            graph = parse_topology(self.spec, seed=self.seed)
        elif self.factory is not None:
            from .pool import resolve_callable

            graph = resolve_callable(self.factory)(**dict(self.kwargs))
        elif self.payload is not None:
            graph = pickle.loads(self.payload)
        else:
            raise ExecutionError("empty GraphRef: no spec, factory or "
                                 "payload")
        if not isinstance(graph, SystemGraph):
            raise ExecutionError(
                f"GraphRef produced a {type(graph).__name__}, not a "
                f"SystemGraph")
        _MATERIALIZED[self] = graph
        return graph

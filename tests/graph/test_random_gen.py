"""Tests for randomized topology generation."""

import pytest

from repro.graph import random_dag, random_loopy, random_suite


class TestRandomDag:
    def test_deterministic_per_seed(self):
        a = random_dag(7)
        b = random_dag(7)
        assert [e.key() for e in a.edges] == [e.key() for e in b.edges]

    def test_seeds_differ(self):
        a = random_dag(1)
        b = random_dag(2)
        assert [e.key() for e in a.edges] != [e.key() for e in b.edges]

    def test_always_acyclic(self):
        for seed in range(20):
            assert random_dag(seed).is_feedforward()

    def test_every_shell_shell_edge_has_relay(self):
        for seed in range(10):
            g = random_dag(seed)
            shells = {n.name for n in g.shells()}
            for edge in g.edges:
                if edge.src in shells and edge.dst in shells:
                    assert edge.relay_count >= 1

    def test_validates_and_elaborates(self):
        for seed in range(5):
            g = random_dag(seed)
            g.validate()
            system = g.elaborate()
            system.run(10)

    def test_half_probability(self):
        g = random_dag(3, half_probability=1.0)
        assert g.relay_count("half") == g.relay_count()


class TestRandomLoopy:
    def test_contains_cycle(self):
        for seed in range(10):
            assert not random_loopy(seed).is_feedforward()

    def test_full_on_loops_by_default(self):
        from repro.graph import half_relays_on_loops

        for seed in range(10):
            g = random_loopy(seed, half_probability=0.8)
            assert half_relays_on_loops(g) == []

    def test_hazardous_mode(self):
        found_hazard = False
        from repro.graph import half_relays_on_loops

        for seed in range(10):
            g = random_loopy(seed, half_probability=1.0,
                             ensure_full_on_loops=False)
            if half_relays_on_loops(g):
                found_hazard = True
        assert found_hazard

    def test_elaborates_and_runs(self):
        for seed in range(5):
            system = random_loopy(seed).elaborate()
            system.run(15)


class TestSuite:
    def test_suite_sizes(self):
        graphs = random_suite(range(4))
        assert len(graphs) == 4

    def test_loopy_flag(self):
        graphs = random_suite(range(3), loopy=True)
        assert all(not g.is_feedforward() for g in graphs)

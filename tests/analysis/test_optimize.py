"""Tests for relay-station budgeting."""

from fractions import Fraction

import pytest

from repro.analysis import (
    free_slack,
    insertion_plan,
    max_relays_at_rate,
    pareto_relay_throughput,
)
from repro.errors import AnalysisError
from repro.graph import figure1, pipeline, reconvergent, ring
from repro.skeleton import system_throughput


class TestMaxRelaysAtRate:
    def test_pipeline_edges_are_unbounded(self):
        graph = pipeline(2, relays_per_hop=1)
        # Feed-forward chains tolerate any depth at T=1.
        for index in range(len(graph.edges)):
            assert max_relays_at_rate(graph, index, limit=32) == 32

    def test_short_branch_slack_matches_imbalance(self):
        graph = figure1()
        short_index = next(
            i for i, e in enumerate(graph.edges)
            if (e.src, e.dst) == ("A", "C"))
        # Keeping T >= 4/5: the short branch can grow from 1 to 3
        # relay stations (1 -> balance improves to 1, 2 -> i=0, T=1,
        # 3 -> imbalance flips, back to 4/5... wait: sweep decides).
        best = max_relays_at_rate(graph, short_index,
                                  target=Fraction(4, 5), limit=16)
        probe = graph.copy()
        probe.edges[short_index].relays = ("full",) * best
        assert system_throughput(probe) >= Fraction(4, 5)
        over = graph.copy()
        over.edges[short_index].relays = ("full",) * (best + 1)
        assert system_throughput(over) < Fraction(4, 5)

    def test_bad_edge_index(self):
        with pytest.raises(AnalysisError):
            max_relays_at_rate(figure1(), 99)

    def test_target_above_current_rejected(self):
        with pytest.raises(AnalysisError):
            max_relays_at_rate(figure1(), 0, target=Fraction(9, 10))


class TestFreeSlack:
    def test_figure1_slack_profile(self):
        slack = free_slack(figure1(), limit=16)
        # The long branch is binding: zero slack there.
        assert slack[("A", "B0")] == 0
        assert slack[("B0", "C")] == 0
        # The short branch tolerates extra stations up to rebalance.
        assert slack[("A", "C")] >= 1
        # Source and sink edges never bind.
        assert slack[("src", "A")] == 16 - 0 - len(())

    def test_loop_arcs_have_no_slack(self):
        graph = ring(2, relays_per_arc=1)
        slack = free_slack(graph, limit=8)
        assert slack[("S0", "S1")] == 0
        assert slack[("S1", "S0")] == 0


class TestInsertionPlan:
    def test_requirements_met_and_balanced(self):
        graph = figure1()
        planned, rate = insertion_plan(graph, {("A", "B0"): 3})
        long_edge = next(e for e in planned.edges
                         if (e.src, e.dst) == ("A", "B0"))
        assert len(long_edge.relays) >= 3
        assert rate == Fraction(1)  # equalization restored full rate
        assert system_throughput(planned) == Fraction(1)

    def test_no_requirements_is_pure_equalization(self):
        graph = reconvergent(long_relays=(2, 1), short_relays=1)
        planned, rate = insertion_plan(graph, {})
        assert rate == Fraction(1)

    def test_original_untouched(self):
        graph = figure1()
        insertion_plan(graph, {("A", "B0"): 5})
        assert graph.relay_count() == 3


class TestPareto:
    def test_curve_shape_on_short_branch(self):
        graph = figure1()
        short_index = next(
            i for i, e in enumerate(graph.edges)
            if (e.src, e.dst) == ("A", "C"))
        curve = pareto_relay_throughput(graph, short_index, max_relays=4)
        rates = [rate for _count, rate in curve]
        # Peak at perfect balance (2 stations), decline on both sides.
        assert rates[2] == Fraction(1)
        assert rates[1] == Fraction(4, 5)
        assert rates[3] < Fraction(1)

    def test_curve_validated_by_simulation(self):
        graph = figure1()
        curve = pareto_relay_throughput(graph, 3, max_relays=3)
        for count, rate in curve[1:]:  # skip 0: shell-shell direct
            probe = graph.copy()
            probe.edges[3].relays = ("full",) * count
            assert system_throughput(probe) == rate, count

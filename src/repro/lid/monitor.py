"""Runtime protocol monitors: hardware assertions for live simulations.

The model checker (:mod:`repro.verify`) proves the block *specs* safe;
these monitors watch the *running* system and raise
:class:`~repro.errors.ProtocolViolationError` the moment any channel
breaks a protocol invariant — the simulation counterpart of SVA
assertions bound to every channel:

* **hold**: a valid token presented under an asserted stop must be
  presented unchanged in the next cycle;
* **no-phantom-drop**: a valid token may only disappear in a cycle in
  which it was consumable (no stop);
* **stop-shape** (optional, strict): stop must never be asserted on a
  channel whose token is void when the consumer follows the refined
  protocol.

Attach with :func:`watch_system` (every channel) or by constructing
:class:`ChannelMonitor` for specific channels.  Monitors are pure
observers — they never drive signals — so they cannot perturb the run.

Violations are *structured*: every raised
:class:`~repro.errors.ProtocolViolationError` carries the cycle,
channel name, protocol variant and invariant id, and — when the
simulator has :class:`~repro.obs.Telemetry` attached — the same record
is emitted as a ``monitor/violation`` event before raising, so a trace
export captures the violation alongside the events leading up to it.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ProtocolViolationError
from ..kernel.scheduler import Simulator
from .channel import Channel
from .token import Token
from .variant import ProtocolVariant


def _violation(sim: Simulator, message: str, *, channel: str,
               invariant: str, cycle: int,
               variant: Optional[ProtocolVariant]
               ) -> ProtocolViolationError:
    """Build the structured error and trace it before it is raised."""
    error = ProtocolViolationError(
        message, cycle=cycle, channel=channel, variant=variant,
        invariant=invariant)
    telemetry = getattr(sim, "telemetry", None)
    if telemetry is not None:
        if telemetry.events is not None:
            telemetry.events.emit(
                "monitor", "violation", cycle, channel=channel,
                invariant=invariant,
                variant=str(variant) if variant else None,
                message=message)
        if telemetry.metrics is not None:
            telemetry.metrics.counter(
                f"lid/monitor/{invariant}/violations").inc()
    return error


class ChannelMonitor:
    """Observer asserting per-channel protocol invariants every cycle."""

    def __init__(self, channel: Channel, strict_stop_shape: bool = False,
                 variant: Optional[ProtocolVariant] = None):
        self.channel = channel
        self.strict_stop_shape = strict_stop_shape
        self.variant = variant
        self._prev_token: Optional[Token] = None
        self._prev_stop = False
        self.cycles_observed = 0
        self.tokens_seen = 0

    def attach(self, sim: Simulator) -> "ChannelMonitor":
        sim.add_cycle_hook(self._sample)
        return self

    def _sample(self, sim: Simulator) -> None:
        token = self.channel.read()
        stop = self.channel.stop_asserted()

        if self._prev_token is not None:
            held = self._prev_token.valid and self._prev_stop
            if held and token != self._prev_token:
                raise _violation(
                    sim,
                    f"channel {self.channel.name!r}: token "
                    f"{self._prev_token} was stopped at cycle "
                    f"{sim.cycle - 1} but cycle {sim.cycle} presents "
                    f"{token} — hold violated",
                    channel=self.channel.name, invariant="hold",
                    cycle=sim.cycle, variant=self.variant,
                )

        if self.strict_stop_shape and stop and not token.valid \
                and self.variant is ProtocolVariant.CASU:
            raise _violation(
                sim,
                f"channel {self.channel.name!r}: stop asserted on a void "
                f"token at cycle {sim.cycle}; the refined protocol "
                f"discards stops on invalid signals",
                channel=self.channel.name, invariant="stop-shape",
                cycle=sim.cycle, variant=self.variant,
            )

        if token.valid:
            self.tokens_seen += 1
        self._prev_token = token
        self._prev_stop = stop
        self.cycles_observed += 1


class StreamMonitor:
    """Observer asserting that a channel's consumed payloads are fresh.

    Detects duplication: the same (consumed) token appearing in two
    consecutive consumable cycles.  Legitimate repeats under stop are
    fine — only back-to-back consumption of an identical token with no
    intervening hold is flagged when ``forbid_repeats`` is set (useful
    for counting streams, where payloads are strictly increasing).
    """

    def __init__(self, channel: Channel, forbid_repeats: bool = False):
        self.channel = channel
        self.forbid_repeats = forbid_repeats
        self.consumed: List = []

    def attach(self, sim: Simulator) -> "StreamMonitor":
        sim.add_cycle_hook(self._sample)
        return self

    def _sample(self, sim: Simulator) -> None:
        token = self.channel.read()
        stop = self.channel.stop_asserted()
        if token.valid and not stop:
            if (self.forbid_repeats and self.consumed
                    and self.consumed[-1] == token.value):
                raise _violation(
                    sim,
                    f"channel {self.channel.name!r}: payload "
                    f"{token.value!r} consumed twice in a row at cycle "
                    f"{sim.cycle}",
                    channel=self.channel.name, invariant="no-duplicate",
                    cycle=sim.cycle, variant=None,
                )
            self.consumed.append(token.value)


def watch_system(system, strict_stop_shape: bool = False
                 ) -> List[ChannelMonitor]:
    """Attach a :class:`ChannelMonitor` to every channel of *system*.

    Call before :meth:`~repro.lid.system.LidSystem.run`; returns the
    monitors (their counters are handy in tests).  The system's variant
    governs the optional stop-shape check.
    """
    monitors = []
    for channel in system.channels:
        monitor = ChannelMonitor(
            channel,
            strict_stop_shape=strict_stop_shape,
            variant=system.variant,
        )
        monitor.attach(system.sim)
        monitors.append(monitor)
    return monitors

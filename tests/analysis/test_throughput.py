"""Tests for the closed-form throughput formulas."""

from fractions import Fraction

import pytest

from repro.analysis import (
    analyze_loops,
    analyze_reconvergence,
    loop_throughput,
    reconvergence_pairs,
    reconvergent_throughput,
    static_system_throughput,
    tree_throughput,
)
from repro.errors import AnalysisError
from repro.graph import composed, figure1, figure2, pipeline, reconvergent, ring, tree
from repro.skeleton import system_throughput


class TestLoopFormula:
    @pytest.mark.parametrize("s,r,expected", [
        (1, 1, Fraction(1, 2)),
        (2, 2, Fraction(1, 2)),
        (2, 3, Fraction(2, 5)),
        (3, 4, Fraction(3, 7)),
        (5, 0, Fraction(1)),
    ])
    def test_values(self, s, r, expected):
        assert loop_throughput(s, r) == expected

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            loop_throughput(0, 1)
        with pytest.raises(AnalysisError):
            loop_throughput(1, -1)


class TestReconvergentFormula:
    @pytest.mark.parametrize("i,m,expected", [
        (1, 5, Fraction(4, 5)),   # figure 1
        (0, 6, Fraction(1)),
        (2, 6, Fraction(2, 3)),
    ])
    def test_values(self, i, m, expected):
        assert reconvergent_throughput(i, m) == expected

    def test_invalid(self):
        with pytest.raises(AnalysisError):
            reconvergent_throughput(1, 0)
        with pytest.raises(AnalysisError):
            reconvergent_throughput(7, 5)


class TestTreeThroughput:
    def test_tree_is_one(self):
        assert tree_throughput(tree(2)) == 1

    def test_loopy_rejected(self):
        with pytest.raises(AnalysisError):
            tree_throughput(figure2())

    def test_reconvergent_rejected(self):
        with pytest.raises(AnalysisError):
            tree_throughput(figure1())


class TestReconvergenceExtraction:
    def test_figure1_pair_found(self):
        pairs = reconvergence_pairs(figure1())
        assert ("A", "C") in pairs

    def test_tree_has_no_pairs(self):
        assert reconvergence_pairs(tree(2)) == []

    def test_figure1_parameters(self):
        i, m, rate = analyze_reconvergence(figure1(), "A", "C")
        assert (i, m, rate) == (1, 5, Fraction(4, 5))

    def test_non_reconvergent_pair_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_reconvergence(pipeline(3), "S0", "S2")

    @pytest.mark.parametrize("long_relays,short,expect_i", [
        ((2, 1), 1, 2),
        ((1, 1, 1), 1, 2),
        ((3, 1), 2, 2),
    ])
    def test_formula_matches_simulation(self, long_relays, short, expect_i):
        graph = reconvergent(long_relays=long_relays, short_relays=short)
        i, m, rate = analyze_reconvergence(graph, "A", "C")
        assert i == expect_i
        assert rate == system_throughput(graph)


class TestAnalyzeLoops:
    def test_figure2_loop(self):
        loops = analyze_loops(figure2())
        assert list(loops.values()) == [Fraction(1, 2)]

    def test_feedforward_empty(self):
        assert analyze_loops(figure1()) == {}

    def test_multi_arc_ring(self):
        loops = analyze_loops(ring(3, relays_per_arc=[2, 1, 1]))
        assert list(loops.values()) == [Fraction(3, 7)]


class TestStaticSystemThroughput:
    @pytest.mark.parametrize("graph", [
        figure1(), figure2(), tree(2), pipeline(3), composed(),
        reconvergent(long_relays=(2, 2), short_relays=1),
    ])
    def test_matches_simulation(self, graph):
        assert static_system_throughput(graph) == system_throughput(graph)


class TestEffectiveThroughput:
    def test_topology_bound_when_endpoints_fast(self):
        from repro.analysis import effective_throughput

        assert effective_throughput(figure1()) == Fraction(4, 5)

    def test_slow_source_binds(self):
        from repro.analysis import effective_throughput

        rate = effective_throughput(
            figure1(), source_rates={"src": Fraction(1, 2)})
        assert rate == Fraction(1, 2)

    def test_slow_sink_binds(self):
        from repro.analysis import effective_throughput

        rate = effective_throughput(
            pipeline(2), sink_rates={"out": Fraction(2, 3)})
        assert rate == Fraction(2, 3)

    @pytest.mark.parametrize("src_pattern,sink_pattern", [
        ((True, False), (False,)),
        ((True,), (False, True)),
        ((True, True, False), (False, False, True)),
    ])
    def test_min_composition_matches_simulation(self, src_pattern,
                                                sink_pattern):
        """min(source rate, sink rate, topology) equals the measured
        rate — the composition law the helper encodes."""
        from repro.analysis import effective_throughput

        graph = pipeline(2, relays_per_hop=1)
        src_rate = Fraction(sum(src_pattern), len(src_pattern))
        sink_rate = Fraction(
            sum(1 for s in sink_pattern if not s), len(sink_pattern))
        predicted = effective_throughput(
            graph, source_rates={"src": src_rate},
            sink_rates={"out": sink_rate})
        measured = system_throughput(
            graph,
            source_patterns={"src": src_pattern},
            sink_patterns={"out": sink_pattern},
        )
        assert measured == predicted

"""Single-flight execution: coalesce concurrent identical work.

The campaign service (and any other concurrent front end over the
content-addressed :class:`~repro.exec.cache.ResultCache`) has a classic
thundering-herd hole: two requests for the same ``fingerprint x params``
arriving while the result is *in flight* both miss the cache and both
run the simulation.  :class:`SingleFlight` closes it — the first caller
for a key becomes the **leader** and computes; every concurrent caller
for the same key becomes a **follower** and blocks until the leader
finishes, then shares the leader's result (or its exception).

Guarantees:

* at most one execution per key is in flight at any moment;
* followers never observe a torn result — they wake only after the
  leader has published value-or-exception;
* the key is retired when the flight lands, so a *later* caller starts
  a fresh flight (single-flight is not a cache; pair it with one);
* exceptions propagate to the leader and every follower of that flight,
  and do not poison subsequent flights for the key.

This is the synchronous (thread) half; the asyncio front end in
:mod:`repro.serve.coalesce` implements the same contract with keyed
futures on the event loop.  Coalesced calls are counted through the
optional *stats* hook (any object with a ``coalesced`` int attribute,
e.g. :class:`~repro.exec.cache.CacheStats`).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, Tuple


class _Flight:
    """One in-flight computation: a latch plus its outcome."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Thread-safe keyed coalescing map (Go ``singleflight`` shape)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[Any, _Flight] = {}

    def inflight(self) -> int:
        """Number of keys currently being computed (for stats pages)."""
        with self._lock:
            return len(self._flights)

    def do(self, key: Any, fn: Callable[[], Any], *,
           stats: Any = None) -> Tuple[Any, bool]:
        """Run ``fn()`` once per concurrent burst of *key*.

        Returns ``(value, leader)`` — *leader* is True for the caller
        that actually executed *fn*.  Followers block until the
        leader's flight lands, then share its value or re-raise its
        exception.  *stats.coalesced* (when given) is incremented once
        per follower.
        """
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[key] = flight
            elif stats is not None:
                stats.coalesced += 1
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, False
        try:
            flight.value = fn()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            # Retire the key *before* releasing the followers: a caller
            # arriving after the latch opens must start a fresh flight,
            # never join a landed one.
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.value, True

"""Structured event tracing: a ring-buffered simulation event stream.

Every dynamic claim in the paper (throughput collapse under stop
back-pressure, half-vs-full relay behaviour, transient structure) is an
*event* pattern before it is a number.  :class:`EventStream` records
those patterns as typed, timestamped records at negligible cost: a
bounded ``deque`` of plain tuples, no formatting, no I/O until an
exporter is asked for (:mod:`repro.obs.exporters`).

The stream is **zero-cost when absent**: instrumented code guards every
emission with ``if telemetry is not None`` (or the equivalent cached
attribute check), so a run without telemetry executes no tracing code
beyond a predictable branch.

Event taxonomy (category / name):

========== ================== ==========================================
category   names              meaning / fields
========== ================== ==========================================
token      fire, accept       a shell fired / a sink consumed a token
stall      assert             a stop wire observed asserted this cycle
relay      occupancy          a relay station's buffered-token count
                              changed (``occupancy`` holds the new value)
monitor    violation          a runtime protocol monitor tripped
                              (``invariant``, ``channel``, ``variant``)
inject     arm, fire          a fault injector was armed on its target /
                              actually perturbed state this cycle
                              (``kind``, ``target``, for fires also the
                              concrete mutation)
fixpoint   ambiguous          the stop network admitted more than one
                              fixpoint this cycle (potential deadlock)
phase      <phase name>       a profiler phase completed (``seconds``)
run        start, end         run-level markers (parameters as fields)
exec       progress           live driver-side execution status
                              (``done``, ``total``, ``cache_hits``,
                              ``eta_seconds``) — wall-clock paced, so
                              never part of canonical payloads
========== ================== ==========================================
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Known event categories (exporters accept unknown ones, this is the
#: documented vocabulary used by the built-in instrumentation).
CATEGORIES = ("token", "stall", "relay", "monitor", "inject", "fixpoint",
              "phase", "run", "exec")

#: Default ring capacity: enough for ~100 cycles of a dense mid-size
#: system without unbounded growth on long runs.
DEFAULT_CAPACITY = 65536


class Event:
    """One structured trace record.

    Attributes
    ----------
    cycle:
        Simulation cycle the event belongs to (wall-clock-free).
    category, name:
        Taxonomy coordinates (see module docstring).
    fields:
        Event-specific payload, JSON-compatible values only.
    """

    __slots__ = ("cycle", "category", "name", "fields")

    def __init__(self, cycle: int, category: str, name: str,
                 fields: Optional[Dict[str, Any]] = None):
        self.cycle = cycle
        self.category = category
        self.name = name
        self.fields = fields or {}

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-compatible rendering (fields inlined)."""
        record: Dict[str, Any] = {
            "cycle": self.cycle,
            "category": self.category,
            "name": self.name,
        }
        for key, value in self.fields.items():
            record[key] = value
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Event":
        fields = {k: v for k, v in record.items()
                  if k not in ("cycle", "category", "name")}
        return cls(int(record["cycle"]), str(record["category"]),
                   str(record["name"]), fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.cycle == other.cycle
                and self.category == other.category
                and self.name == other.name
                and self.fields == other.fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Event(cycle={self.cycle}, {self.category}/{self.name}, "
                f"{self.fields!r})")


class EventStream:
    """Bounded in-memory event recorder.

    Parameters
    ----------
    capacity:
        Ring size; the oldest events are dropped once full (``None``
        disables the bound — use only for short runs).  The number of
        events dropped is tracked in :attr:`dropped`.
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, category: str, name: str, cycle: int,
             **fields: Any) -> None:
        """Record one event (cheap: one tuple append)."""
        self._events.append(Event(cycle, category, name, fields))
        self.emitted += 1

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound so far."""
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def events(self) -> List[Event]:
        """Snapshot of the retained events, oldest first."""
        return list(self._events)

    def absorb(self, events: "Iterator[Event] | List[Event]",
               emitted: Optional[int] = None) -> int:
        """Merge already-recorded *events* (e.g. from a worker stream).

        *emitted* credits the source stream's total emission count so
        :attr:`dropped` keeps accounting for events the *source* ring
        already lost — the merge must not silently launder drops.  When
        omitted, only the absorbed events are credited.  Returns the
        number of events absorbed.
        """
        count = 0
        for event in events:
            self._events.append(event)
            count += 1
        self.emitted += emitted if emitted is not None else count
        return count

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    def counts_by_category(self) -> Dict[str, int]:
        """Retained events per category (diagnostic summary)."""
        return dict(Counter(ev.category for ev in self._events))

    def select(self, category: Optional[str] = None,
               name: Optional[str] = None) -> List[Event]:
        """Retained events filtered by category and/or name."""
        return [ev for ev in self._events
                if (category is None or ev.category == category)
                and (name is None or ev.name == name)]

    def cycle_span(self) -> Tuple[int, int]:
        """(first, last) cycle among retained events; (0, 0) if empty."""
        if not self._events:
            return (0, 0)
        cycles = [ev.cycle for ev in self._events]
        return (min(cycles), max(cycles))

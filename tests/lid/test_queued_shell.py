"""Tests for queued shells (the Carloni-style memory placement)."""

import pytest

from repro import LidSystem, pearls
from repro.errors import StructuralError
from repro.lid.queued_shell import QueuedShell
from repro.lid.reference import is_prefix


def queued_pipeline(stages=2, depth=2, stop_script=None, stream=None):
    """Queued shells connected DIRECTLY — no relay stations at all."""
    system = LidSystem("qpipe")
    src = system.add_source("src", stream=stream)
    shells = [
        system.add_queued_shell(f"S{i}", pearls.Identity(initial=-1 - i),
                                queue_depth=depth)
        for i in range(stages)
    ]
    sink = system.add_sink("out", stop_script=stop_script)
    system.connect(src, shells[0])
    for a, b in zip(shells, shells[1:]):
        system.connect(a, b)  # direct: the queue is the memory element
    system.connect(shells[-1], sink)
    return system, sink


class TestConstruction:
    def test_depth_validated(self):
        with pytest.raises(StructuralError):
            QueuedShell("q", pearls.Identity(), queue_depth=0)

    def test_lint_allows_direct_connection(self):
        system, _sink = queued_pipeline(stages=3)
        system.finalize(strict=True)  # no relay stations needed

    def test_plain_shell_still_rejected(self):
        system = LidSystem("bad")
        src = system.add_source("src")
        a = system.add_queued_shell("A", pearls.Identity())
        b = system.add_shell("B", pearls.Identity())  # plain consumer
        sink = system.add_sink("out")
        system.connect(src, a)
        system.connect(a, b)
        system.connect(b, sink)
        with pytest.raises(StructuralError, match="relay station"):
            system.finalize(strict=True)

    def test_no_combinational_stop_cycle_through_queues(self):
        # A loop of queued shells has registered stops everywhere.
        system = LidSystem("qloop")
        a = system.add_queued_shell("A", pearls.Identity(initial=1))
        b = system.add_queued_shell("B", pearls.Identity(initial=2))
        sink = system.add_sink("out")
        system.connect(a, b, consumer_port="a")
        system.connect(b, a, consumer_port="a")
        system.connect(a, sink)
        system.finalize(strict=True)  # lint passes


class TestBehaviour:
    def test_full_throughput_with_depth_two(self):
        system, sink = queued_pipeline(stages=3, depth=2)
        system.run(40)
        assert sink.steady_throughput(10, 40) == 1.0

    def test_depth_one_halves_throughput(self):
        system, sink = queued_pipeline(stages=2, depth=1)
        system.run(60)
        assert abs(sink.steady_throughput(10, 60) - 0.5) < 0.05

    def test_latency_equivalence(self):
        system, sink = queued_pipeline(
            stages=3, depth=2, stop_script=lambda c: c % 3 == 1)
        system.run(60)
        ref = system.reference_outputs(60)["out"]
        assert is_prefix(sink.payloads, ref)

    def test_no_overflow_under_pressure(self):
        system, sink = queued_pipeline(
            stages=2, depth=2, stop_script=lambda c: (c // 3) % 2 == 0)
        system.run(80)  # the overflow guard raises if the skid fails

    def test_queue_occupancy_bounded(self):
        system, sink = queued_pipeline(
            stages=2, depth=2, stop_script=lambda c: True)
        system.run(20)
        for shell in system.shells.values():
            occupancy = shell.queue_occupancy()
            assert all(v <= 2 for v in occupancy.values())

    def test_bursty_stream(self):
        system, sink = queued_pipeline(
            stages=2, depth=2, stream=[5, None, 6, None, None, 7])
        system.run(25)
        assert sink.payloads[2:] == [5, 6, 7]


class TestOverflowGuard:
    def test_broken_stop_invariant_caught(self):
        """Sabotage the registered stop and the FIFO's runtime guard
        must catch the resulting overflow instead of silently dropping
        a token."""
        from repro.errors import ProtocolViolationError

        system, _sink = queued_pipeline(
            stages=2, depth=2, stop_script=lambda c: True)
        # Force the second shell's stop register low every cycle.
        victim = system.shells["S1"]
        original_publish = victim.publish

        def sabotaged_publish():
            victim._stop_regs = {p: False for p in victim._stop_regs}
            original_publish()

        victim.publish = sabotaged_publish
        with pytest.raises(ProtocolViolationError, match="overflow"):
            system.run(20)


class TestLoopThroughput:
    def test_queued_loop_formula(self):
        """A loop of S queued shells behaves like S shells + S queue
        stages: T = S/(S+S) = 1/2 for depth-2 queues."""
        system = LidSystem("qloop")
        a = system.add_queued_shell("A", pearls.Identity(initial=1))
        b = system.add_queued_shell("B", pearls.Identity(initial=2))
        sink = system.add_sink("out")
        system.connect(a, b, consumer_port="a")
        system.connect(b, a, consumer_port="a")
        system.connect(a, sink)
        system.run(120)
        assert system.sinks["out"].steady_throughput(40, 120) == \
            pytest.approx(0.5, abs=0.02)


class TestMixedSystems:
    def test_queued_and_plain_interoperate(self):
        system = LidSystem("mixed")
        src = system.add_source("src")
        plain = system.add_shell("plain", pearls.Accumulator())
        queued = system.add_queued_shell("queued", pearls.Scaler(gain=2))
        sink = system.add_sink("out")
        system.connect(src, plain, consumer_port="a")
        system.connect(plain, queued, consumer_port="a")  # direct: ok
        system.connect(queued, sink, relays=1)
        system.run(40)
        ref = system.reference_outputs(40)["out"]
        assert is_prefix(system.sinks["out"].payloads, ref)
        assert len(system.sinks["out"].payloads) > 30

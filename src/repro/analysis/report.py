"""One-shot analysis reports: everything the paper predicts, per system.

:func:`analyze` bundles topology classification, static throughput
(closed formulas and minimum cycle ratio), simulated throughput,
transient, and the liveness verdict into a single dataclass with a
pretty text rendering — the CLI's ``repro-lid analyze`` output.
"""

from __future__ import annotations

import dataclasses
import io
from fractions import Fraction
from typing import Dict, List, Tuple

from ..graph.model import SystemGraph
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from .mcr import min_cycle_ratio_throughput
from .throughput import (
    analyze_loops,
    analyze_reconvergence,
    reconvergence_pairs,
    static_system_throughput,
)
from .transient import analyze_transient


@dataclasses.dataclass
class SystemReport:
    """Full static + dynamic characterization of one system graph."""

    name: str
    variant: str
    shells: int
    relays_full: int
    relays_half: int
    topology_class: str
    loops: Dict[Tuple[str, ...], Fraction]
    reconvergences: List[Tuple[str, str, int, int, Fraction]]
    static_throughput: Fraction
    mcr_throughput: Fraction
    critical_cycle: List[str]
    simulated_throughput: Fraction
    transient: int
    period: int
    transient_bound: int
    deadlock_verdict: str

    @property
    def formulas_agree(self) -> bool:
        """Do the static predictions match the simulated throughput?"""
        return self.mcr_throughput == self.simulated_throughput

    def render(self) -> str:
        out = io.StringIO()
        out.write(f"System {self.name!r} [{self.variant} protocol]\n")
        out.write(
            f"  blocks: {self.shells} shells, {self.relays_full} full + "
            f"{self.relays_half} half relay stations\n"
        )
        out.write(f"  topology class: {self.topology_class}\n")
        for cycle, rate in self.loops.items():
            out.write(
                f"  loop {' -> '.join(cycle)}: S/(S+R) = {rate}\n"
            )
        for div, join, i, m, rate in self.reconvergences:
            out.write(
                f"  reconvergence {div} => {join}: i={i}, m={m}, "
                f"(m-i)/m = {rate}\n"
            )
        out.write(
            f"  throughput: formulas={self.static_throughput} "
            f"mcr={self.mcr_throughput} simulated={self.simulated_throughput}"
            f" [{'agree' if self.formulas_agree else 'DISAGREE'}]\n"
        )
        if self.critical_cycle:
            out.write(
                f"  critical cycle: {' -> '.join(self.critical_cycle)}\n"
            )
        out.write(
            f"  transient: {self.transient} cycles (bound "
            f"{self.transient_bound}), period {self.period}\n"
        )
        out.write(f"  liveness: {self.deadlock_verdict}\n")
        return out.getvalue()


def classify(graph: SystemGraph) -> str:
    """Name the paper's topology class this graph belongs to."""
    loops = graph.shell_cycles()
    pairs = reconvergence_pairs(graph)
    if loops and pairs:
        base = "feed-forward combination of self-interacting loops"
    elif loops:
        base = "feedback"
    elif pairs:
        base = "reconvergent feed-forward"
    else:
        base = "tree / pipeline (feed-forward)"
    if not graph.is_single_clock():
        from ..ir import lower

        # The lowering keeps only the domains that actually host nodes.
        return f"GALS ({len(lower(graph).domains)} clock domains) {base}"
    return base


def analyze(
    graph: SystemGraph,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    max_cycles: int = 50_000,
    *,
    jobs: int = 1,
    graph_ref=None,
    cache=None,
) -> SystemReport:
    """Run every analysis on *graph* and return the combined report.

    *jobs*, *graph_ref* and *cache* are forwarded to the liveness check
    (see :func:`repro.skeleton.deadlock.check_deadlock`); the report is
    identical for any ``jobs`` value.
    """
    from ..skeleton.deadlock import check_deadlock
    from ..skeleton.sim import SkeletonSim

    loops = analyze_loops(graph)
    recon: List[Tuple[str, str, int, int, Fraction]] = []
    for div, join in reconvergence_pairs(graph):
        try:
            i, m, rate = analyze_reconvergence(graph, div, join)
        except Exception:
            continue
        recon.append((div, join, i, m, rate))

    if graph.is_single_clock():
        mcr = min_cycle_ratio_throughput(graph)
        mcr_throughput, critical_cycle = mcr.throughput, mcr.critical_cycle
    else:
        # The marked-graph model has no firing schedules; report the
        # certified GALS bound in the MCR slot (exact for feed-forward
        # compositions, upper bound for cyclic ones).
        mcr_throughput = static_system_throughput(graph)
        critical_cycle = []
    sim = SkeletonSim(graph, variant=variant)
    result = sim.run(max_cycles=max_cycles)
    verdict = check_deadlock(graph, variant=variant, max_cycles=max_cycles,
                             jobs=jobs, graph_ref=graph_ref, cache=cache)
    transient = analyze_transient(graph, variant=variant,
                                  max_cycles=max_cycles)

    return SystemReport(
        name=graph.name,
        variant=str(variant),
        shells=len(graph.shells()),
        relays_full=graph.relay_count("full"),
        relays_half=(graph.relay_count("half")
                     + graph.relay_count("half-registered")),
        topology_class=classify(graph),
        loops=loops,
        reconvergences=recon,
        static_throughput=static_system_throughput(graph),
        mcr_throughput=mcr_throughput,
        critical_cycle=critical_cycle,
        simulated_throughput=result.min_shell_throughput(),
        transient=result.transient,
        period=result.period,
        transient_bound=transient.static_bound,
        deadlock_verdict=verdict.detail,
    )

"""Unit tests for the Component base class."""

from repro.kernel.component import Component
from repro.kernel.scheduler import Simulator


class TestDefaults:
    def test_hooks_are_noops(self):
        comp = Component("c")
        comp.reset()
        comp.publish()
        comp.settle()
        comp.tick()  # none raise

    def test_cycle_before_attach_is_zero(self):
        assert Component("c").cycle == 0

    def test_cycle_tracks_simulator(self):
        sim = Simulator()
        comp = Component("c")
        sim.add_component(comp)
        sim.step(4)
        assert comp.cycle == 4

    def test_attached_stores_simulator(self):
        sim = Simulator()
        comp = sim.add_component(Component("c"))
        assert comp._sim is sim

    def test_repr_contains_name(self):
        assert "widget" in repr(Component("widget"))


class TestLifecycleOrdering:
    def test_publish_before_settle_before_tick(self):
        order = []

        class Probe(Component):
            def publish(self):
                order.append("publish")

            def settle(self):
                order.append("settle")

            def tick(self):
                order.append("tick")

        sim = Simulator()
        sim.add_component(Probe("p"))
        sim.step(1)
        assert order[0] == "publish"
        assert order[-1] == "tick"
        assert "settle" in order

    def test_reset_called_once_per_reset(self):
        count = {"resets": 0}

        class Probe(Component):
            def reset(self):
                count["resets"] += 1

        sim = Simulator()
        sim.add_component(Probe("p"))
        sim.step(3)   # auto reset
        sim.reset()   # explicit
        assert count["resets"] == 2

"""Zero-latency reference model for latency-equivalence checking.

The paper's safety notion: a LIP implementation is safe iff any
composition of blocks *"behaves in a latency insensitive sense exactly
as an equally connected system without shells and non-pipelined
connections"*.  This module builds that equally connected system from a
:class:`~repro.lid.system.LidSystem`'s recorded wiring: relay stations
collapse to ideal zero-delay wires, every pearl fires every cycle, and
each sink records one payload per cycle.

Equivalence is then checked on *projections*: the sequence of valid
payloads a LID sink accepts must be a prefix of the reference sink's
payload sequence (the LID run may simply not have progressed as far in
the same number of clock cycles).

Sources whose scripts run out are handled with **poison** values: an
exhausted source emits :data:`POISON`, any pearl with a poisoned input
forwards poison without stepping, and sinks stop recording at the first
poison — giving per-sink well-defined reference prefixes even in graphs
where sources exhaust at different times.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple


class _Poison:
    """Sentinel for 'no more reference data on this path'."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "POISON"


POISON = _Poison()


def _ultimate_producer(system, channel) -> Tuple[str, Any, Any]:
    """Walk a channel backwards through relay stations to its real driver.

    Returns ``("source", source, None)`` or ``("shell", shell, port)``.
    """
    seen = set()
    while True:
        name = channel.producer
        if name is None:
            from ..errors import StructuralError

            raise StructuralError(f"channel {channel.name!r} has no producer")
        if name in seen:
            from ..errors import StructuralError

            raise StructuralError(
                f"relay chain starting at {channel.name!r} is cyclic"
            )
        seen.add(name)
        if name in system.relays:
            channel = system.relays[name].input
            continue
        if name in system.sources:
            return ("source", system.sources[name], None)
        shell = system.shells[name]
        for port, chans in shell.output_channels.items():
            if channel in chans:
                return ("shell", shell, port)
        from ..errors import StructuralError

        raise StructuralError(
            f"block {name!r} drives {channel.name!r} on no known port"
        )


def run_reference(system, cycles: int) -> Dict[str, List[Any]]:
    """Simulate the zero-latency reference; return sink payload streams.

    The pearls of *system* are reused (they are ``reset()`` first), so
    do not interleave this with a live LID simulation of the same
    system.
    """
    shells = list(system.shells.values())
    sinks = list(system.sinks.items())

    # Resolve, once, where every shell input port and every sink reads from.
    shell_feeds: Dict[str, Dict[str, Tuple[str, Any, Any]]] = {}
    for shell in shells:
        shell_feeds[shell.name] = {
            port: _ultimate_producer(system, chan)
            for port, chan in shell.input_channels.items()
        }
    sink_feeds = {
        name: _ultimate_producer(system, sink.input) for name, sink in sinks
    }

    # Initial Moore outputs.
    out_regs: Dict[str, Dict[str, Any]] = {}
    for shell in shells:
        out_regs[shell.name] = dict(shell.pearl.reset())

    # Source projections: the valid payloads only, one per cycle.
    source_streams: Dict[str, List[Any]] = {}
    for name, source in system.sources.items():
        stream = source._make_stream()
        payloads: List[Any] = []
        for _ in range(cycles + 1):
            token = next(stream, None)
            if token is None:
                break
            if token.valid:
                payloads.append(token.value)
        source_streams[name] = payloads
    source_pos = {name: 0 for name in source_streams}

    results: Dict[str, List[Any]] = {name: [] for name, _ in sinks}

    def read_feed(feed) -> Any:
        kind, block, port = feed
        if kind == "source":
            pos = source_pos[block.name]
            stream = source_streams[block.name]
            if pos >= len(stream):
                return POISON
            return stream[pos]
        return out_regs[block.name][port]

    for _cycle in range(cycles):
        # Sinks sample the current Moore outputs.
        for name, _sink in sinks:
            value = read_feed(sink_feeds[name])
            if value is POISON:
                continue
            results[name].append(value)

        # All shells fire simultaneously on the current values.
        new_regs: Dict[str, Dict[str, Any]] = {}
        for shell in shells:
            inputs = {
                port: read_feed(feed)
                for port, feed in shell_feeds[shell.name].items()
            }
            if any(v is POISON for v in inputs.values()):
                new_regs[shell.name] = {
                    port: POISON for port in shell.pearl.output_ports
                }
            elif any(v is POISON for v in out_regs[shell.name].values()):
                # Once poisoned, a pearl stays poisoned: its internal
                # state stopped advancing when poison first arrived.
                new_regs[shell.name] = out_regs[shell.name]
            else:
                new_regs[shell.name] = dict(shell.pearl.step(inputs))
        out_regs = new_regs

        # Sources advance by one payload per cycle.
        for name in source_pos:
            source_pos[name] += 1

    return results


def is_prefix(shorter: List[Any], longer: List[Any]) -> bool:
    """True iff *shorter* is an elementwise prefix of *longer*."""
    if len(shorter) > len(longer):
        return False
    return all(a == b for a, b in zip(shorter, longer))

"""Tests for floorplan-driven relay insertion."""

from fractions import Fraction

import pytest

from repro.errors import AnalysisError, StructuralError
from repro.graph import (
    Placement,
    apply_floorplan,
    figure1,
    figure2,
    layered_placement,
    pipeline,
    required_relays,
    ring,
    shrink_sweep,
    tree,
)
from repro.lid.reference import is_prefix
from repro.skeleton import system_throughput


class TestRequiredRelays:
    @pytest.mark.parametrize("length,reach,expected", [
        (0.0, 1.0, 0),
        (1.0, 1.0, 0),     # within reach: plain wire
        (1.01, 1.0, 1),    # just over: one station
        (2.0, 1.0, 1),
        (3.5, 1.0, 3),
        (10.0, 2.5, 3),
    ])
    def test_values(self, length, reach, expected):
        assert required_relays(length, reach) == expected

    def test_reach_validated(self):
        with pytest.raises(AnalysisError):
            required_relays(1.0, 0)


class TestPlacement:
    def test_distance_is_manhattan(self):
        placement = Placement({"a": (0, 0), "b": (3, 4)})
        assert placement.distance("a", "b") == 7

    def test_require_flags_missing_blocks(self):
        placement = Placement({"src": (0, 0)})
        with pytest.raises(StructuralError, match="misses"):
            placement.require(figure1())

    def test_layered_placement_covers_all_nodes(self):
        graph = figure1()
        placement = layered_placement(graph)
        placement.require(graph)

    def test_layered_placement_is_deterministic(self):
        a = layered_placement(figure1()).positions
        b = layered_placement(figure1()).positions
        assert a == b

    def test_layered_placement_orders_columns(self):
        positions = layered_placement(pipeline(3)).positions
        assert positions["src"][0] < positions["S0"][0] < \
            positions["S1"][0] < positions["S2"][0]

    def test_loops_share_layout(self):
        graph = ring(2, relays_per_arc=1)
        placement = layered_placement(graph)
        placement.require(graph)  # cycles don't break the layering


class TestApplyFloorplan:
    def test_short_wires_need_only_the_paper_minimum(self):
        graph = pipeline(2, relays_per_hop=0)
        # All blocks adjacent: nothing forced by length, but the
        # shell-to-shell hop still gets the paper's mandatory station.
        placement = layered_placement(graph)
        report = apply_floorplan(graph, placement, reach=10.0,
                                 balance=False)
        assert report.relays_added == 1
        hop = next(e for e in report.graph.edges
                   if (e.src, e.dst) == ("S0", "S1"))
        assert hop.relay_count == 1

    def test_source_and_sink_wires_can_stay_plain(self):
        graph = pipeline(1)
        placement = layered_placement(graph)
        report = apply_floorplan(graph, placement, reach=10.0,
                                 balance=False)
        for edge in report.graph.edges:
            if "src" in (edge.src,) or "out" in (edge.dst,):
                assert edge.relay_count == 0

    def test_long_wires_get_stations(self):
        graph = pipeline(2, relays_per_hop=0)
        placement = Placement({
            "src": (0, 0), "S0": (1, 0), "S1": (6, 0), "out": (7, 0),
        })
        report = apply_floorplan(graph, placement, reach=1.0,
                                 balance=False)
        hop = next(e for e in report.graph.edges
                   if (e.src, e.dst) == ("S0", "S1"))
        assert hop.relay_count == 4  # 5 units / reach 1 -> 4 stations

    def test_existing_stations_count_toward_requirement(self):
        graph = pipeline(2, relays_per_hop=3)
        placement = layered_placement(graph)
        report = apply_floorplan(graph, placement, reach=0.5,
                                 balance=False)
        hop = next(e for e in report.graph.edges
                   if (e.src, e.dst) == ("S0", "S1"))
        assert hop.relay_count == 3  # already deep enough (1u / 0.5)

    def test_balancing_restores_full_rate(self):
        graph = figure1()
        placement = Placement({
            "src": (0, 0), "A": (1, 0), "B0": (2, 3), "C": (3, 0),
            "out": (4, 0),
        })
        unbalanced = apply_floorplan(graph, placement, reach=1.0,
                                     balance=False)
        balanced = apply_floorplan(graph, placement, reach=1.0,
                                   balance=True)
        assert balanced.throughput == Fraction(1)
        assert balanced.throughput >= unbalanced.throughput
        assert balanced.spare_for_balance >= 0

    def test_loops_degrade_gracefully(self):
        graph = figure2()
        placement = Placement({
            "S0": (0, 0), "S1": (4, 0), "out": (5, 0),
        })
        report = apply_floorplan(graph, placement, reach=1.0)
        # 4 units each way need ceil(4)-1 = 3 stations per arc; the
        # pre-existing station on each arc counts toward that, so the
        # loop ends with R = 6 and T = S/(S+R) = 1/4.
        assert report.throughput == Fraction(2, 2 + 6)

    def test_original_graph_untouched(self):
        graph = figure1()
        apply_floorplan(graph, layered_placement(graph), reach=0.25)
        assert graph.relay_count() == 3

    def test_annotated_system_still_equivalent(self):
        graph = figure1()
        report = apply_floorplan(graph, layered_placement(graph),
                                 reach=0.5)
        system = report.graph.elaborate()
        system.run(60)
        ref = system.reference_outputs(60)["out"]
        assert is_prefix(system.sinks["out"].payloads, ref)

    def test_report_rows(self):
        graph = figure1()
        report = apply_floorplan(graph, layered_placement(graph),
                                 reach=1.0)
        rows = report.rows()
        assert len(rows) == len({(e.src, e.dst) for e in graph.edges})


class TestShrinkSweep:
    def test_stations_grow_as_reach_shrinks(self):
        graph = tree(2)
        placement = layered_placement(graph)
        rows = shrink_sweep(graph, placement, [4.0, 2.0, 1.0, 0.5])
        counts = [count for _reach, count, _t in rows]
        assert counts == sorted(counts)

    def test_feedforward_holds_rate_one(self):
        graph = tree(2)
        rows = shrink_sweep(graph, layered_placement(graph),
                            [2.0, 1.0, 0.5])
        assert all(t == 1 for _r, _c, t in rows)

    def test_loop_rate_decays_with_shrink(self):
        graph = figure2()
        placement = Placement({"S0": (0, 0), "S1": (2, 0),
                               "out": (3, 0)})
        rows = shrink_sweep(graph, placement, [2.0, 1.0, 0.5])
        rates = [t for _r, _c, t in rows]
        assert rates == sorted(rates, reverse=True)
        assert rates[-1] < rates[0]

"""EXP-F2: regenerate the paper's Figure 2 (feedback-loop evolution).

Figure 2 evolves a two-shell loop with relay stations: at most S valid
data circulate among S+R positions, so throughput is S/(S+R) — 1/2 for
the figure's instance.  The bench regenerates the sweep table across
relay counts and times the loop simulation.
"""

from fractions import Fraction

import pytest

from repro.bench.runner import run_figure2
from repro.graph import figure2
from repro.skeleton import SkeletonSim


def test_bench_figure2_table(benchmark, emit):
    table, rows = benchmark(run_figure2, 4)
    emit("EXP-F2-feedback", table)
    assert all(row[4] for row in rows)  # predicted == simulated
    # The figure's own instance: S=2, R=2, T=1/2.
    s, r, predicted, simulated, match, _t, _p = rows[0]
    assert (s, r, predicted, simulated) == (2, 2, "1/2", "1/2")


def test_bench_figure2_skeleton(benchmark):
    def run():
        return SkeletonSim(figure2()).run()

    result = benchmark(run)
    assert result.min_shell_throughput() == Fraction(1, 2)


def test_bench_figure2_full_simulation(benchmark):
    def run():
        system = figure2().elaborate()
        system.run(150)
        return system

    system = benchmark(run)
    assert system.sinks["out"].steady_throughput(30, 150) == \
        pytest.approx(0.5)

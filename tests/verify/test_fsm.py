"""Tests for the spec FSMs."""

import pytest

from repro.lid.variant import ProtocolVariant
from repro.verify.fsm import (
    FullRsState,
    HalfRsState,
    ShellState,
    full_rs_outputs,
    full_rs_step,
    half_rs_step,
    half_rs_stop_out,
    shell_fire,
    shell_input_stops,
    shell_step,
)

CASU = ProtocolVariant.CASU
CARLONI = ProtocolVariant.CARLONI


class TestFullRs:
    def test_initial_empty(self):
        state = FullRsState()
        out, stop = full_rs_outputs(state)
        assert out is None and stop is False
        assert state.occupancy == 0

    def test_accepts_into_main(self):
        state = full_rs_step(FullRsState(), 5, stop_in=False)
        assert state.main == 5 and state.aux is None

    def test_streams_through(self):
        state = FullRsState(main=1)
        state = full_rs_step(state, 2, stop_in=False)
        assert state.main == 2

    def test_stop_absorbs_in_flight_into_aux(self):
        state = FullRsState(main=1)
        state = full_rs_step(state, 2, stop_in=True)
        assert state == FullRsState(main=1, aux=2, stop_reg=True)

    def test_full_station_holds_under_stop(self):
        state = FullRsState(main=1, aux=2, stop_reg=True)
        assert full_rs_step(state, None, stop_in=True) == state

    def test_drain_after_stop(self):
        state = FullRsState(main=1, aux=2, stop_reg=True)
        state = full_rs_step(state, None, stop_in=False)
        assert state == FullRsState(main=2, aux=None, stop_reg=False)

    def test_stop_reg_blocks_acceptance(self):
        state = FullRsState(main=1, aux=2, stop_reg=True)
        nxt = full_rs_step(state, 9, stop_in=True)
        assert nxt.aux == 2  # the offered 9 is ignored (upstream holds)

    def test_void_input_drains_main(self):
        state = FullRsState(main=3)
        nxt = full_rs_step(state, None, stop_in=False)
        assert nxt.main is None

    def test_immutability(self):
        state = FullRsState(main=1)
        full_rs_step(state, 2, False)
        assert state.main == 1


class TestHalfRs:
    def test_transparent_stop_casu(self):
        assert half_rs_stop_out(HalfRsState(main=1), True, CASU) is True
        assert half_rs_stop_out(HalfRsState(), True, CASU) is False
        assert half_rs_stop_out(HalfRsState(main=1), False, CASU) is False

    def test_transparent_stop_carloni(self):
        assert half_rs_stop_out(HalfRsState(), True, CARLONI) is True

    def test_registered_stop_tracks_occupancy(self):
        assert half_rs_stop_out(HalfRsState(main=1), False,
                                CASU, registered_stop=True) is True
        assert half_rs_stop_out(HalfRsState(), True,
                                CASU, registered_stop=True) is False

    def test_accept_and_hold(self):
        state = half_rs_step(HalfRsState(), 4, stop_in=False)
        assert state.main == 4
        held = half_rs_step(state, 5, stop_in=True)
        assert held.main == 4  # stop_out told upstream to hold 5

    def test_flow_through(self):
        state = HalfRsState(main=1)
        state = half_rs_step(state, 2, stop_in=False)
        assert state.main == 2

    def test_registered_variant_skips_cycle(self):
        # Occupied + registered stop: the input cannot enter even when
        # the output drains -> a bubble follows every token.
        state = HalfRsState(main=1)
        nxt = half_rs_step(state, 2, stop_in=False, registered_stop=True)
        assert nxt.main is None


class TestShell:
    def test_fire_requires_all_inputs(self):
        state = ShellState(out=(None,))
        assert not shell_fire(state, (None,), (False,))
        assert shell_fire(state, (3,), (False,))

    def test_casu_ignores_stop_on_void_output(self):
        state = ShellState(out=(None,))
        assert shell_fire(state, (1,), (True,), CASU)
        assert not shell_fire(state, (1,), (True,), CARLONI)

    def test_blocked_by_stop_on_valid_output(self):
        state = ShellState(out=(7,))
        assert not shell_fire(state, (1,), (True,), CASU)

    def test_input_stops_on_stall(self):
        state = ShellState(out=(7,))
        stops = shell_input_stops(state, (1, None), (True,), CASU)
        assert stops == (True, False)  # void input spared under CASU

    def test_input_stops_carloni_spread(self):
        state = ShellState(out=(7,))
        stops = shell_input_stops(state, (1, None), (True,), CARLONI)
        assert stops == (True, True)

    def test_step_fires_and_replicates(self):
        state = ShellState(out=(None, None))
        nxt = shell_step(state, (3,), (False, False))
        assert nxt.out == (3, 3)
        assert nxt.fired == 1

    def test_step_holds_stopped_output(self):
        state = ShellState(out=(7, 7))
        nxt = shell_step(state, (None,), (True, False))
        assert nxt.out == (7, None)  # held vs consumed

    def test_payload_modulus(self):
        state = ShellState(out=(None,))
        nxt = shell_step(state, (9,), (False,), modulus=8)
        assert nxt.out == (1,)

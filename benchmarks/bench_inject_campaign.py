"""EXP-R1: fault-injection campaign on the feedback topology.

The robustness claim behind the fault-injection subsystem: on the
paper's feedback example (figure 2), the Casu shell stack *with the
strict stop-shape monitor* detects at least as many stop/void wire
faults as the original Carloni stack lets through as silent
corruption.  Stops-on-void are illegal under the Casu discipline, so a
faulted stop wire has a shape a monitor can reject; under Carloni the
same faulted wire is indistinguishable from legitimate back-pressure
and the corruption it causes surfaces only in the data streams.

The bench runs the same deterministic fault list (seed 7, 48 samples
over 100 cycles) through both variants and asserts

    detected(CASU, strict) >= silent_corruption(CARLONI)

then emits a ``BENCH_EXP-R1-inject-campaign.json`` record.  Like
EXP-O1 this is a standalone contract bench: it is not part of the
EXPERIMENTS registry, so the golden campaign table is untouched.
"""

from time import perf_counter

from repro.bench.tables import format_table
from repro.graph import figure2
from repro.inject import VERDICTS, run_campaign
from repro.lid.variant import ProtocolVariant

CYCLES = 100
SAMPLES = 48
SEED = 7
CLASSES = ("stop", "void")


def _campaign(variant, strict):
    graph = figure2()
    return run_campaign(
        graph, variant=variant, classes=CLASSES, cycles=CYCLES,
        samples=SAMPLES, seed=SEED, strict=strict)


def test_bench_inject_campaign(benchmark, emit):
    started = perf_counter()
    casu = _campaign(ProtocolVariant.CASU, strict=True)
    carloni = _campaign(ProtocolVariant.CARLONI, strict=False)
    wall = perf_counter() - started
    benchmark.pedantic(_campaign, args=(ProtocolVariant.CASU, True),
                       rounds=1, iterations=1)

    casu_counts = casu.counts()
    carloni_counts = carloni.counts()
    detected = casu_counts["detected"]
    silent = carloni_counts["silent-corruption"]
    assert detected >= silent, (
        f"strict Casu stack detected {detected} faults but Carloni "
        f"silently corrupted {silent}: the robustness claim regressed")
    # Both campaigns classify the identical fault list, so totals agree.
    assert sum(casu_counts.values()) == sum(carloni_counts.values())

    rows = [
        (f"{name}", *[str(counts[v]) for v in VERDICTS])
        for name, counts in (
            ("casu (strict monitor)", casu_counts),
            ("carloni", carloni_counts),
        )
    ]
    table = format_table(
        ("stack", *VERDICTS),
        rows,
        title=f"Fault campaign on figure2 feedback loop "
              f"({SAMPLES} stop/void faults, {CYCLES} cycles, "
              f"seed {SEED}): strict Casu detects >= Carloni's "
              f"silent corruption",
    )
    emit("EXP-R1-inject-campaign", table, rows=rows,
         wall_seconds=wall,
         params={"cycles": CYCLES, "samples": SAMPLES, "seed": SEED,
                 "classes": list(CLASSES), "topology": "figure2"},
         counters={"casu_detected": detected,
                   "carloni_silent_corruption": silent,
                   "casu_masked": casu_counts["masked"],
                   "carloni_masked": carloni_counts["masked"],
                   "experiments": len(casu.results)})

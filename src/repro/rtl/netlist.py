"""Structural netlists and their cycle-accurate evaluation.

The paper implements its blocks as RTL FSMs (the details live in the
authors' FMGALS'03 companion paper).  This module provides the netlist
substrate: typed cells (registers, muxes, gates), named nets, a
topological combinational evaluator and synchronous register updates —
enough to express the relay stations and shells structurally and to
*prove them equivalent* to the behavioural models by co-simulation
(``tests/rtl/test_conformance.py``).

Nets carry Python ints; width is metadata used by the VHDL emitter
(1-bit nets are ``std_logic``, wider nets are ``unsigned`` vectors).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ElaborationError

#: Supported cell types and their port signatures (inputs, outputs).
CELL_TYPES = {
    "REG":   (("d", "en"), ("q",)),   # enable-gated register
    "MUX2":  (("a", "b", "sel"), ("y",)),  # y = sel ? b : a
    "AND2":  (("a", "b"), ("y",)),
    "OR2":   (("a", "b"), ("y",)),
    "XOR2":  (("a", "b"), ("y",)),
    "NOT":   (("a",), ("y",)),
    "CONST": ((), ("y",)),
    "BUF":   (("a",), ("y",)),
}


@dataclasses.dataclass
class Net:
    """A named wire with a bit width."""

    name: str
    width: int = 1
    driver: Optional[str] = None  # cell.port or "input"


@dataclasses.dataclass
class Cell:
    """One instantiated primitive."""

    name: str
    kind: str
    pins: Dict[str, str]           # port -> net name
    params: Dict[str, Any] = dataclasses.field(default_factory=dict)


class Netlist:
    """A flat structural netlist with primary ports."""

    def __init__(self, name: str):
        self.name = name
        self.nets: Dict[str, Net] = {}
        self.cells: Dict[str, Cell] = {}
        self.inputs: List[str] = []
        self.outputs: List[str] = []

    # -- construction ------------------------------------------------------

    def net(self, name: str, width: int = 1) -> str:
        """Declare (or fetch) a net; returns its name for chaining."""
        if name in self.nets:
            if self.nets[name].width != width:
                raise ElaborationError(
                    f"net {name!r} redeclared with width {width} "
                    f"(was {self.nets[name].width})"
                )
            return name
        self.nets[name] = Net(name, width)
        return name

    def add_input(self, name: str, width: int = 1) -> str:
        self.net(name, width)
        self.nets[name].driver = "input"
        self.inputs.append(name)
        return name

    def add_output(self, name: str, width: int = 1) -> str:
        self.net(name, width)
        self.outputs.append(name)
        return name

    def cell(self, kind: str, name: str, **pins: str) -> Cell:
        """Instantiate a primitive; pins map port names to net names."""
        if kind not in CELL_TYPES:
            raise ElaborationError(f"unknown cell type {kind!r}")
        if name in self.cells:
            raise ElaborationError(f"duplicate cell name {name!r}")
        params = {}
        for meta in ("width", "init", "value"):
            if meta in pins:
                params[meta] = pins.pop(meta)
        in_ports, out_ports = CELL_TYPES[kind]
        expected = set(in_ports) | set(out_ports)
        if kind == "REG" and "en" not in pins:
            pins["en"] = self._const_net(1)
        if set(pins) != expected:
            raise ElaborationError(
                f"{kind} cell {name!r}: pins {sorted(pins)} != "
                f"expected {sorted(expected)}"
            )
        for port, net_name in pins.items():
            if net_name not in self.nets:
                self.net(net_name, width=params.get("width", 1)
                         if port not in ("en", "sel") else 1)
        for port in out_ports:
            target = self.nets[pins[port]]
            if target.driver is not None:
                raise ElaborationError(
                    f"net {pins[port]!r} has two drivers "
                    f"({target.driver} and {name}.{port})"
                )
            target.driver = f"{name}.{port}"
        cell = Cell(name, kind, dict(pins), params)
        self.cells[name] = cell
        return cell

    def _const_net(self, value: int) -> str:
        name = f"const_{value}"
        if name not in self.nets:
            self.net(name)
            self.cell("CONST", f"c{value}", y=name, value=value)
        return name

    # -- convenience builders -------------------------------------------------

    _gensym = 0

    def _fresh(self, prefix: str) -> str:
        Netlist._gensym += 1
        return f"{prefix}_{Netlist._gensym}"

    def g_and(self, a: str, b: str, y: Optional[str] = None) -> str:
        y = self.net(y or self._fresh("and"))
        self.cell("AND2", self._fresh("u_and"), a=a, b=b, y=y)
        return y

    def g_or(self, a: str, b: str, y: Optional[str] = None) -> str:
        y = self.net(y or self._fresh("or"))
        self.cell("OR2", self._fresh("u_or"), a=a, b=b, y=y)
        return y

    def g_not(self, a: str, y: Optional[str] = None) -> str:
        y = self.net(y or self._fresh("not"))
        self.cell("NOT", self._fresh("u_not"), a=a, y=y)
        return y

    def g_mux(self, a: str, b: str, sel: str, y: Optional[str] = None,
              width: int = 1) -> str:
        y = self.net(y or self._fresh("mux"), width)
        self.cell("MUX2", self._fresh("u_mux"), a=a, b=b, sel=sel, y=y,
                  width=width)
        return y

    def g_reg(self, d: str, q: str, en: Optional[str] = None,
              init: int = 0, width: int = 1) -> str:
        q = self.net(q, width)
        pins = {"d": d, "q": q}
        if en is not None:
            pins["en"] = en
        self.cell("REG", self._fresh("u_reg"), width=width, init=init, **pins)
        return q

    # -- statistics ------------------------------------------------------------

    def register_count(self) -> int:
        """Total register *bits* (the paper's memory-requirement metric)."""
        return sum(
            c.params.get("width", 1)
            for c in self.cells.values() if c.kind == "REG"
        )

    def gate_count(self) -> int:
        return sum(1 for c in self.cells.values() if c.kind != "REG")

    def validate(self) -> None:
        """Every net must be driven; every input pin must exist."""
        for net in self.nets.values():
            if net.driver is None:
                raise ElaborationError(f"net {net.name!r} is undriven")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist({self.name!r}, cells={len(self.cells)}, "
            f"nets={len(self.nets)}, regs={self.register_count()}b)"
        )


class NetlistSimulator:
    """Two-phase evaluation of a netlist (combinational settle + edge)."""

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._order = self._topological_order()
        self.values: Dict[str, int] = {}
        self.reset()

    def _topological_order(self) -> List[Cell]:
        """Combinational cells sorted so drivers precede readers."""
        comb = [c for c in self.netlist.cells.values() if c.kind != "REG"]
        produced_by: Dict[str, Cell] = {}
        for cell in comb:
            _ins, outs = CELL_TYPES[cell.kind]
            for port in outs:
                produced_by[cell.pins[port]] = cell
        order: List[Cell] = []
        state: Dict[str, int] = {}

        def visit(cell: Cell, stack: Tuple[str, ...]) -> None:
            if state.get(cell.name) == 2:
                return
            if state.get(cell.name) == 1:
                raise ElaborationError(
                    f"combinational loop through {cell.name!r} "
                    f"(path {' -> '.join(stack)})"
                )
            state[cell.name] = 1
            in_ports, _outs = CELL_TYPES[cell.kind]
            for port in in_ports:
                net = cell.pins[port]
                upstream = produced_by.get(net)
                if upstream is not None:
                    visit(upstream, stack + (cell.name,))
            state[cell.name] = 2
            order.append(cell)

        for cell in comb:
            visit(cell, ())
        return order

    def reset(self) -> None:
        self.values = {name: 0 for name in self.netlist.nets}
        for cell in self.netlist.cells.values():
            if cell.kind == "REG":
                self.values[cell.pins["q"]] = cell.params.get("init", 0)
            elif cell.kind == "CONST":
                self.values[cell.pins["y"]] = cell.params.get("value", 0)

    def settle(self, inputs: Dict[str, int]) -> Dict[str, int]:
        """Evaluate combinational logic for the given primary inputs."""
        unknown = set(inputs) - set(self.netlist.inputs)
        if unknown:
            raise ElaborationError(f"not primary inputs: {sorted(unknown)}")
        for name, value in inputs.items():
            self.values[name] = value
        for cell in self._order:
            self._eval(cell)
        return {name: self.values[name] for name in self.netlist.outputs}

    def _eval(self, cell: Cell) -> None:
        v = self.values
        p = cell.pins
        if cell.kind == "AND2":
            v[p["y"]] = int(bool(v[p["a"]]) and bool(v[p["b"]]))
        elif cell.kind == "OR2":
            v[p["y"]] = int(bool(v[p["a"]]) or bool(v[p["b"]]))
        elif cell.kind == "XOR2":
            v[p["y"]] = int(bool(v[p["a"]]) != bool(v[p["b"]]))
        elif cell.kind == "NOT":
            v[p["y"]] = int(not v[p["a"]])
        elif cell.kind == "BUF":
            v[p["y"]] = v[p["a"]]
        elif cell.kind == "MUX2":
            v[p["y"]] = v[p["b"]] if v[p["sel"]] else v[p["a"]]
        elif cell.kind == "CONST":
            v[p["y"]] = cell.params.get("value", 0)

    def tick(self) -> None:
        """Clock edge: all registers sample their (settled) D pins."""
        updates = []
        for cell in self.netlist.cells.values():
            if cell.kind != "REG":
                continue
            if self.values[cell.pins["en"]]:
                updates.append((cell.pins["q"], self.values[cell.pins["d"]]))
        for q, value in updates:
            self.values[q] = value

    def step(self, inputs: Dict[str, int]) -> Dict[str, int]:
        """settle + tick; returns the pre-edge primary outputs."""
        outputs = self.settle(inputs)
        self.tick()
        return outputs

"""Transient length analysis.

The paper: the transient *"is related to the number of relay stations
and shells, and can be predicted upfront"* — which is what makes the
simulate-to-transient-extinction deadlock strategy affordable.

This module provides the measured quantity (via skeleton periodicity
detection), the static bound, and a tree-specific exact statement:
for trees the initial latency before full-speed firing is at most the
longest source-to-sink path (in register stages), because the voids
initially stored in relay stations must drain toward the primary
outputs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import networkx as nx

from ..errors import AnalysisError
from ..graph.model import SystemGraph
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from ..skeleton.periodicity import transient_bound


@dataclasses.dataclass
class TransientReport:
    """Measured vs. predicted transient for one system."""

    measured_transient: int
    period: int
    static_bound: int
    longest_path: int

    @property
    def within_bound(self) -> bool:
        return self.measured_transient <= self.static_bound


def longest_register_path(graph: SystemGraph) -> int:
    """Longest source-to-sink path counting register stages.

    Each hop contributes its relay stations plus one register for the
    producing shell or source.  For feed-forward graphs this is the
    pipeline depth; the tree claim bounds the transient by it.  Raises
    for cyclic graphs.
    """
    g = nx.DiGraph()
    g.add_nodes_from(graph.nodes)
    for edge in graph.edges:
        weight = edge.relay_count + 1
        existing = g.get_edge_data(edge.src, edge.dst)
        if existing is None or existing["w"] < weight:
            g.add_edge(edge.src, edge.dst, w=weight)
    if not nx.is_directed_acyclic_graph(g):
        raise AnalysisError("longest path needs an acyclic graph")
    depth: Dict[str, int] = {}
    best = 0
    for node in nx.topological_sort(g):
        incoming = [
            depth[u] + data["w"] for u, _v, data in g.in_edges(node, data=True)
        ]
        depth[node] = max(incoming) if incoming else 0
        best = max(best, depth[node])
    return best


def analyze_transient(
    graph: SystemGraph,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    max_cycles: int = 100_000,
    **skeleton_kwargs,
) -> TransientReport:
    """Measure the transient and compare against the static bound."""
    from ..skeleton.sim import SkeletonSim

    sim = SkeletonSim(graph, variant=variant, **skeleton_kwargs)
    result = sim.run(max_cycles=max_cycles)
    try:
        longest = longest_register_path(graph)
    except AnalysisError:
        longest = -1  # cyclic: the tree bound does not apply
    return TransientReport(
        measured_transient=result.transient,
        period=result.period,
        static_bound=transient_bound(graph),
        longest_path=longest,
    )


def first_full_speed_cycle(
    graph: SystemGraph,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    max_cycles: int = 10_000,
    sink: Optional[str] = None,
) -> int:
    """First cycle from which a sink accepts a token every cycle.

    This is the paper's tree-topology "initial latency ... before firing
    at full speed"; for trees it is bounded by the longest path.
    Raises :class:`AnalysisError` if the sink never reaches rate 1
    (e.g. on a throughput-limited topology).
    """
    from ..skeleton.sim import SkeletonSim

    sim = SkeletonSim(graph, variant=variant)
    if sink is None:
        sinks = graph.sinks()
        if len(sinks) != 1:
            raise AnalysisError("specify the sink to watch")
        sink = sinks[0].name
    result = sim.run(max_cycles=max_cycles)
    sink_idx = sim.sink_names.index(sink)
    accepts = [row[sink_idx] for row in sim.accept_history]
    # Walk backwards over the prefix: the steady regime must be all-ones.
    if result.sink_accepts[sink] != result.period:
        raise AnalysisError(
            f"sink {sink!r} does not reach full speed "
            f"(rate {result.sink_accepts[sink]}/{result.period})"
        )
    last_gap = -1
    for cycle, accepted in enumerate(accepts[: result.transient + result.period]):
        if not accepted:
            last_gap = cycle
    return last_gap + 1

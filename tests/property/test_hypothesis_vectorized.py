"""Differential fuzzing of the vectorized backend against the scalar.

Random small graphs x random sink stop scripts x random source
availability scripts x both protocol variants: the batch engine must
reproduce the scalar engine's per-shell firing counts, sink accepts
and steady-state period exactly.  This is the property-based arm of the
conformance suite in ``tests/skeleton/test_backend_conformance.py``.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph import random_dag, random_loopy
from repro.lid.variant import ProtocolVariant
from repro.skeleton import BatchSkeletonSim, SkeletonSim

pytestmark = pytest.mark.slow

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

stop_patterns = st.lists(st.booleans(), min_size=1, max_size=5).map(tuple)
avail_patterns = st.lists(st.booleans(), min_size=1, max_size=4).map(
    lambda bits: tuple(bits) if any(bits) else (True,))
variants = st.sampled_from([ProtocolVariant.CASU,
                            ProtocolVariant.CARLONI])


def _scalar_counts(graph, sink_map, source_map, variant, cycles):
    scalar = SkeletonSim(graph, sink_patterns=sink_map,
                         source_patterns=source_map, variant=variant,
                         detect_ambiguity=False)
    fires = [0] * len(scalar.shell_names)
    accepted = 0
    for _ in range(cycles):
        f, acc = scalar.step()
        for i, fired in enumerate(f):
            fires[i] += fired
        accepted += sum(acc)
    return scalar.shell_names, fires, accepted


@given(seed=st.integers(0, 5_000), sink=stop_patterns,
       src=avail_patterns, variant=variants)
@settings(**SETTINGS)
def test_batch_matches_scalar_on_random_dags(seed, sink, src, variant):
    """Feed-forward graphs with a random relay-station mix."""
    graph = random_dag(seed, shells=4, half_probability=0.4)
    sinks = [n.name for n in graph.sinks()]
    sources = [n.name for n in graph.sources()]
    sink_map = {sinks[0]: sink}
    source_map = {sources[0]: src} if sources else {}
    cycles = 80

    batch = BatchSkeletonSim(graph, [sink_map],
                             source_patterns=[source_map],
                             variant=variant, detect_ambiguity=False)
    batch.run(cycles)
    names, fires, accepted = _scalar_counts(graph, sink_map,
                                            source_map, variant,
                                            cycles)
    for i, name in enumerate(names):
        j = batch.shell_names.index(name)
        assert int(batch.shell_fired[j][0]) == fires[i], name
    assert int(batch.sink_accepted.sum()) == accepted


@given(seed=st.integers(0, 5_000), sink=stop_patterns,
       variant=variants)
@settings(**SETTINGS)
def test_batch_matches_scalar_on_loopy_graphs(seed, sink, variant):
    """Graphs with feedback loops exercise the iterative fixpoint."""
    graph = random_loopy(seed, shells=4)
    sinks = [n.name for n in graph.sinks()]
    sink_map = {sinks[0]: sink} if sinks else {}
    cycles = 80

    batch = BatchSkeletonSim(graph, [sink_map], variant=variant,
                             detect_ambiguity=False)
    batch.run(cycles)
    names, fires, accepted = _scalar_counts(graph, sink_map, {},
                                            variant, cycles)
    for i, name in enumerate(names):
        j = batch.shell_names.index(name)
        assert int(batch.shell_fired[j][0]) == fires[i], name
    assert int(batch.sink_accepted.sum()) == accepted


@given(seed=st.integers(0, 2_000), sink=stop_patterns,
       src=avail_patterns, variant=variants)
@settings(**SETTINGS)
def test_period_matches_scalar(seed, sink, src, variant):
    """Steady-state structure, not just totals: transient and period."""
    graph = random_dag(seed, shells=3, half_probability=0.3)
    sinks = [n.name for n in graph.sinks()]
    sources = [n.name for n in graph.sources()]
    sink_map = {sinks[0]: sink}
    source_map = {sources[0]: src} if sources else {}

    result = BatchSkeletonSim(
        graph, [sink_map], source_patterns=[source_map],
        variant=variant, detect_ambiguity=False).run_to_period()[0]
    ref = SkeletonSim(graph, sink_patterns=sink_map,
                      source_patterns=source_map, variant=variant,
                      detect_ambiguity=False).run()
    assert (result.transient, result.period) == (ref.transient,
                                                 ref.period)
    assert result.shell_fires == ref.shell_fires
    assert result.sink_accepts == ref.sink_accepts

"""Parallel campaign execution: deterministic fan-out plus caching.

``repro.exec`` is the layer that lets campaigns, sweeps and liveness
probes use every core **without changing a single output byte**:

* :func:`map_deterministic` — chunked process-pool map whose result is
  exactly ``[fn(u) for u in units]`` for any ``jobs`` value;
* :class:`WorkUnit` / :func:`run_unit` — picklable, name-addressed
  units of work;
* :class:`GraphRef` — a picklable recipe for rebuilding an (often
  unpicklable) :class:`~repro.graph.model.SystemGraph` inside workers;
* :class:`ResultCache` / :func:`graph_fingerprint` — content-addressed
  golden-run and periodicity cache (memory + optional disk layer under
  ``~/.cache/repro-lid/``, byte-budgeted by an mtime-ordered GC);
* :class:`SingleFlight` — keyed in-flight coalescing: concurrent
  callers computing the same key share one execution (the campaign
  service's thundering-herd guard).

The determinism contract and the cache layout are documented in
``docs/parallelism.md``.
"""

from .cache import (
    CACHE_SCHEMA,
    DEFAULT_CACHE_MAX_BYTES,
    CacheStats,
    ResultCache,
    atomic_write_bytes,
    cache_max_bytes,
    default_cache_dir,
    graph_fingerprint,
)
from .flight import SingleFlight
from .graphs import GraphRef
from .pool import (
    TraceCollection,
    WorkerTrace,
    WorkUnit,
    chunk_units,
    map_deterministic,
    plane_chunks,
    resolve_callable,
    run_unit,
    worker_telemetry,
)

__all__ = [
    "CACHE_SCHEMA",
    "CacheStats",
    "DEFAULT_CACHE_MAX_BYTES",
    "GraphRef",
    "ResultCache",
    "SingleFlight",
    "TraceCollection",
    "WorkUnit",
    "WorkerTrace",
    "atomic_write_bytes",
    "cache_max_bytes",
    "chunk_units",
    "default_cache_dir",
    "graph_fingerprint",
    "map_deterministic",
    "plane_chunks",
    "resolve_callable",
    "run_unit",
    "worker_telemetry",
]

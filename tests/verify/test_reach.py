"""Tests for the BFS exploration engine."""

import pytest

from repro.verify.monitors import Violation
from repro.verify.reach import explore, reachable_states


def counter_system(limit, violate_at=None):
    """States 0..limit-1 with wraparound; optional violation."""

    def successors(state):
        nxt = (state + 1) % limit
        if violate_at is not None and nxt == violate_at:
            raise Violation(f"hit {violate_at}")
        yield (f"inc->{nxt}", nxt)

    return successors


class TestExplore:
    def test_clean_system_holds(self):
        result = explore([0], counter_system(5))
        assert result.holds
        assert result.states_explored == 5

    def test_violation_found(self):
        result = explore([0], counter_system(10, violate_at=4))
        assert not result.holds
        assert "hit 4" in result.counterexample.reason

    def test_counterexample_is_minimal(self):
        result = explore([0], counter_system(10, violate_at=3))
        # reset(0) -> 1 -> 2 -> violating step
        assert len(result.counterexample) == 4

    def test_counterexample_renders(self):
        result = explore([0], counter_system(6, violate_at=2))
        text = result.counterexample.render()
        assert "violation" in text and "(reset)" in text

    def test_multiple_initial_states(self):
        result = explore([0, 2], counter_system(4))
        assert result.states_explored == 4

    def test_branching_explored_fully(self):
        def successors(state):
            if len(state) < 3:
                yield ("a", state + "a")
                yield ("b", state + "b")

        result = explore([""], successors)
        assert result.holds
        assert result.states_explored == 1 + 2 + 4 + 8

    def test_state_budget_enforced(self):
        def successors(state):
            yield ("inc", state + 1)  # infinite

        with pytest.raises(MemoryError):
            explore([0], successors, max_states=100)

    def test_bool_protocol(self):
        assert explore([0], counter_system(2))
        assert not explore([0], counter_system(4, violate_at=1))


class TestReachableStates:
    def test_collects_all(self):
        states = reachable_states([0], counter_system(7))
        assert sorted(states) == list(range(7))

    def test_budget(self):
        def successors(state):
            yield ("", state + 1)

        with pytest.raises(MemoryError):
            reachable_states([0], successors, max_states=50)

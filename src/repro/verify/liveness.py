"""Block-level progress checks (the liveness half of the campaign).

The paper handles system liveness by topology arguments plus skeleton
simulation (:mod:`repro.skeleton.deadlock`).  At the block level the
relevant obligation is *progress*: with a willing producer and a
never-stopping consumer, a block must keep emitting tokens — no
reachable state may be a local livelock.

:func:`check_progress` explores the product of a block with the eager /
cooperative environments and verifies every reachable state emits a
token within a bounded number of cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Optional

from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from . import fsm
from .env import EagerUpstream
from .reach import reachable_states


@dataclasses.dataclass
class ProgressResult:
    """Verdict of a bounded-progress check."""

    block: str
    holds: bool
    states_explored: int
    bound: int
    stuck_state: Optional[Hashable] = None


def _rs_cooperative_step(kind: str, variant: ProtocolVariant):
    registered = kind == "half-registered"
    is_full = kind == "full"

    def step(state):
        rs, up = state
        present = up.choices()[0]
        stop_in = False
        if is_full:
            out_tok, stop_out = fsm.full_rs_outputs(rs)
            next_rs = fsm.full_rs_step(rs, present, stop_in, variant)
        else:
            out_tok = rs.main
            stop_out = fsm.half_rs_stop_out(rs, stop_in, variant, registered)
            next_rs = fsm.half_rs_step(rs, present, stop_in, variant,
                                       registered)
        emitted = out_tok is not None
        return (next_rs, up.after(present, stop_out)), emitted

    return step


def check_progress(
    kind: str = "full",
    variant: ProtocolVariant = DEFAULT_VARIANT,
    bound: int = 8,
) -> ProgressResult:
    """Every reachable relay-station state emits within *bound* cycles.

    Reachability is explored under the *arbitrary* environment (any
    offer pattern, any stop pattern); progress from each state is then
    required under the *cooperative* one — i.e. once the downstream
    relents, the block must move.  This is the standard weak-fairness
    phrasing of "no token gets stuck inside the station".
    """
    registered = kind == "half-registered"
    is_full = kind == "full"

    def successors(state):
        rs, up = state
        for present in up.choices():
            for stop_in in (False, True):
                if is_full:
                    _out, stop_out = fsm.full_rs_outputs(rs)
                    next_rs = fsm.full_rs_step(rs, present, stop_in, variant)
                else:
                    stop_out = fsm.half_rs_stop_out(
                        rs, stop_in, variant, registered)
                    next_rs = fsm.half_rs_step(
                        rs, present, stop_in, variant, registered)
                yield "", (next_rs, up.after(present, stop_out))

    if is_full:
        initial = (fsm.FullRsState(), EagerUpstream())
    else:
        initial = (fsm.HalfRsState(), EagerUpstream())
    states = reachable_states([initial], successors)

    cooperative = _rs_cooperative_step(kind, variant)
    for state in states:
        cursor = state
        for _ in range(bound):
            cursor, emitted = cooperative(cursor)
            if emitted:
                break
        else:
            return ProgressResult(
                block=f"{kind} relay station ({variant})",
                holds=False,
                states_explored=len(states),
                bound=bound,
                stuck_state=state,
            )
    return ProgressResult(
        block=f"{kind} relay station ({variant})",
        holds=True,
        states_explored=len(states),
        bound=bound,
    )

"""Tests for the vectorized batch skeleton simulator."""

from fractions import Fraction

import numpy as np
import pytest

from repro.graph import figure1, figure2, pipeline, ring, tree
from repro.lid.variant import ProtocolVariant
from repro.skeleton import BatchSkeletonSim, SkeletonSim


class TestConstruction:
    def test_half_relays_accepted(self):
        """The generalized engine covers half relay stations."""
        graph = ring(2, relays_per_arc=[["half"], ["full"]])
        batch = BatchSkeletonSim(graph, [{}])
        batch.run(20)
        assert batch.cycle == 20

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchSkeletonSim(pipeline(2), [])

    def test_no_width_rejected(self):
        with pytest.raises(ValueError):
            BatchSkeletonSim(pipeline(2))

    def test_inconsistent_widths_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            BatchSkeletonSim(pipeline(2), [{}, {}],
                             source_patterns=[{}])

    def test_unknown_script_target_rejected(self):
        with pytest.raises(ValueError, match="unknown script target"):
            BatchSkeletonSim(pipeline(2), [{"nope": (True,)}])

    def test_bad_fixpoint_rejected(self):
        with pytest.raises(ValueError, match="fixpoint"):
            BatchSkeletonSim(pipeline(2), [{}], fixpoint="middle")


class TestGeneralizedFeatures:
    def test_scripted_sources_throttle_throughput(self):
        batch = BatchSkeletonSim(
            pipeline(2), batch=2,
            source_patterns=[{}, {"src": (True, False)}])
        batch.run(400)
        rates = batch.sink_rates()["out"]
        assert rates[0] == pytest.approx(1.0, abs=0.02)
        assert rates[1] == pytest.approx(0.5, abs=0.02)

    def test_carloni_variant_wedges_half_relay_pipeline(self):
        """The EXP-T6 ablation, reproduced batched: under the original
        discipline a half-relay pipeline with back pressure wedges."""
        graph = pipeline(3)
        for edge in graph.edges:
            if edge.relays:
                edge.relays = ("half",) * len(edge.relays)
        bp = [{"out": (False, False, True, True)}]
        old = BatchSkeletonSim(graph, bp,
                               variant=ProtocolVariant.CARLONI)
        new = BatchSkeletonSim(graph, bp, variant=ProtocolVariant.CASU)
        old.run(200)
        new.run(200)
        assert int(new.sink_accepted[0][0]) > \
            10 * max(int(old.sink_accepted[0][0]), 1)

    def test_ambiguity_detected_on_half_ring(self):
        graph = ring(2, relays_per_arc=[["half"], ["half"]])
        batch = BatchSkeletonSim(graph, [{}],
                                 variant=ProtocolVariant.CARLONI)
        scalar = SkeletonSim(graph, variant=ProtocolVariant.CARLONI)
        batch.run(30)
        for _ in range(30):
            scalar.step()
        assert batch.ambiguous_cycles[0] == scalar.ambiguous_cycles

    def test_run_to_period_matches_scalar(self):
        graph = figure1()
        results = BatchSkeletonSim(
            graph, [{}, {"out": (False, True)}]).run_to_period()
        for mapping, result in zip([{}, {"out": (False, True)}],
                                   results):
            ref = SkeletonSim(graph, sink_patterns=mapping).run()
            assert (result.transient, result.period) == \
                (ref.transient, ref.period)
            assert result.shell_fires == ref.shell_fires
            assert result.sink_accepts == ref.sink_accepts


class TestAgainstScalar:
    """Every batch column must match a scalar run with the same script."""

    @pytest.mark.parametrize("graph", [
        pipeline(3, relays_per_hop=2), figure1(), figure2(), tree(2),
    ])
    def test_rates_match_scalar(self, graph):
        patterns = [
            {},
            {"out": (False, True)},
            {"out": (False, False, True)},
        ]
        sinks = [n.name for n in graph.sinks()]
        patterns = [
            {sinks[0]: p["out"]} if p else {} for p in patterns
        ]
        cycles = 600
        batch = BatchSkeletonSim(graph, patterns)
        batch.run(cycles)
        batch_rates = batch.sink_rates()[sinks[0]]
        for col, mapping in enumerate(patterns):
            scalar = SkeletonSim(graph, sink_patterns=mapping,
                                 detect_ambiguity=False)
            accepted = 0
            for _ in range(cycles):
                _f, acc = scalar.step()
                accepted += sum(acc)
            assert accepted / cycles == pytest.approx(
                float(batch_rates[col])), (graph.name, col)

    def test_shell_fires_match_scalar(self):
        graph = figure1()
        batch = BatchSkeletonSim(graph, [{}])
        batch.run(400)
        scalar = SkeletonSim(graph, detect_ambiguity=False)
        fires = {name: 0 for name in scalar.shell_names}
        for _ in range(400):
            f, _a = scalar.step()
            for name, fired in zip(scalar.shell_names, f):
                fires[name] += fired
        for name, count in fires.items():
            idx = batch.shell_names.index(name)
            assert batch.shell_fired[idx][0] == count


class TestSweeps:
    def test_backpressure_sweep(self):
        patterns = [{"out": tuple((i >> b) & 1 == 1 for b in range(3))}
                    for i in range(8)]
        batch = BatchSkeletonSim(pipeline(2), patterns)
        batch.run(600)
        rates = batch.sink_rates()["out"]
        # Stop fraction grows with popcount; rate falls accordingly.
        assert rates[0] == pytest.approx(1.0, abs=0.02)
        assert rates[7] == pytest.approx(0.0, abs=0.02)
        for i in range(8):
            expected = 1 - bin(i).count("1") / 3
            assert rates[i] == pytest.approx(expected, abs=0.02)

    def test_stalled_instance_detection(self):
        patterns = [{}, {"out": (True,)}]  # instance 1: stop forever
        batch = BatchSkeletonSim(pipeline(2), patterns)
        batch.run(300)
        assert batch.stalled_instances() == [1]

    def test_figure2_rate_in_batch(self):
        batch = BatchSkeletonSim(figure2(), [{}])
        batch.run(600)
        assert batch.sink_rates()["out"][0] == pytest.approx(0.5,
                                                             abs=0.01)

    def test_requires_run_before_rates(self):
        batch = BatchSkeletonSim(pipeline(2), [{}])
        with pytest.raises(ValueError):
            batch.sink_rates()

    def test_reset(self):
        batch = BatchSkeletonSim(pipeline(2), [{}])
        batch.run(50)
        batch.reset()
        assert batch.cycle == 0
        assert int(batch.shell_fired.sum()) == 0

#!/usr/bin/env python3
"""From protocol blocks to gates: netlists, register budgets, VHDL.

The paper implements relay stations and shells as RTL FSMs and
validates them "using a VHDL description of all blocks".  This example
elaborates the gate-level versions shipped with this package, compares
their register budgets (the minimum-memory argument in numbers),
co-simulates a netlist against the behavioural model, and emits VHDL.

Run:  python examples/rtl_export.py [output_dir]
"""

import sys

from repro.lid.variant import ProtocolVariant
from repro.rtl import (
    NetlistSimulator,
    emit_vhdl,
    full_relay_station_netlist,
    half_relay_station_netlist,
    identity_shell_netlist,
    write_vhdl,
)


def main() -> None:
    width = 8
    blocks = {
        "full relay station": full_relay_station_netlist(width),
        "half relay station": half_relay_station_netlist(width),
        "identity shell": identity_shell_netlist(width),
    }

    print(f"gate-level inventory (data width {width}):")
    for label, netlist in blocks.items():
        print(f"  {label:20s} {netlist.register_count():3d} register "
              f"bits, {netlist.gate_count():3d} gates")
    full_bits = blocks["full relay station"].register_count()
    half_bits = blocks["half relay station"].register_count()
    print(f"\nminimum-memory argument: the full station needs "
          f"{full_bits} register bits (two data slots + flags) so its "
          f"registered stop can absorb the in-flight token; the half "
          f"station gets away with {half_bits} by passing the stop "
          f"through combinationally.")

    # Drive the full station through a stop event and narrate the FSM.
    print("\nco-simulation: full relay station through a stop event")
    sim = NetlistSimulator(full_relay_station_netlist(width))
    script = [
        (10, 1, 0, "token 10 arrives"),
        (11, 1, 1, "token 11 arrives as the downstream stops"),
        (0, 0, 1, "stop persists"),
        (0, 0, 0, "downstream relents"),
        (0, 0, 0, "pipeline drains"),
        (0, 0, 0, "empty again"),
    ]
    for in_data, in_valid, stop_in, note in script:
        outs = sim.settle({"in_data": in_data, "in_valid": in_valid,
                           "stop_in": stop_in})
        state = (f"out={'N' if not outs['out_valid'] else outs['out_data']}"
                 f" stop_out={outs['stop_out']}")
        print(f"  {note:45s} -> {state}")
        sim.tick()

    out_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    for filename, netlist in (
        ("relay_station.vhd", blocks["full relay station"]),
        ("half_relay_station.vhd", blocks["half relay station"]),
        ("identity_shell.vhd", blocks["identity shell"]),
    ):
        path = f"{out_dir}/{filename}"
        write_vhdl(netlist, path)
        print(f"\nwrote {path} "
              f"({len(emit_vhdl(netlist).splitlines())} lines of VHDL)")

    carloni_half = half_relay_station_netlist(
        width, variant=ProtocolVariant.CARLONI)
    print(f"\n(the original-protocol half station differs in exactly "
          f"one gate: stop_out <= stop_in instead of "
          f"stop_in and main_valid — {carloni_half.gate_count()} vs "
          f"{blocks['half relay station'].gate_count()} gates)")

    # The paper's FSM documentation, extracted mechanically.
    from repro.rtl import extract_full_rs_fsm, format_fsm_table, fsm_to_dot

    rows = extract_full_rs_fsm()
    print()
    print(format_fsm_table(
        rows, title="Full relay station as an FSM (extracted from the "
        "verified spec; the paper's EMPTY/HALF/FULL machine)"))
    dot_path = f"{out_dir}/relay_station_fsm.dot"
    with open(dot_path, "w", encoding="utf-8") as fh:
        fh.write(fsm_to_dot(rows, name="relay_station_fsm"))
    print(f"\nwrote {dot_path} (render with: dot -Tpng)")


if __name__ == "__main__":
    main()

"""Integration tests for the repro-lid CLI."""

import pytest

from repro.cli import _parse_topology, main


class TestParseTopology:
    def test_figure1(self):
        assert _parse_topology("figure1").name == "figure1"

    def test_ring_params(self):
        g = _parse_topology("ring:shells=3,relays=2")
        assert len(g.shells()) == 3
        assert g.relay_count() == 6

    def test_reconvergent_params(self):
        g = _parse_topology("reconvergent:long=2+1,short=1")
        assert g.relay_count() == 4

    def test_unknown_topology(self):
        with pytest.raises(SystemExit):
            _parse_topology("moebius")

    def test_composed(self):
        g = _parse_topology("composed:imbalance=2,loop_relays=1")
        assert not g.is_feedforward()

    def test_self_loop(self):
        g = _parse_topology("self_loop:relays=2")
        assert g.shell_cycles() == [["A"]]

    def test_butterfly(self):
        g = _parse_topology("butterfly:lanes=4")
        assert len(g.shells()) == 4


class TestCommands:
    def test_analyze(self, capsys):
        assert main(["analyze", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "4/5" in out and "i=1" in out

    def test_analyze_variant_flag(self, capsys):
        assert main(["analyze", "pipeline:stages=2",
                     "--variant", "carloni"]) == 0
        assert "carloni" in capsys.readouterr().out

    def test_figure1_command(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "4/5" in out

    def test_figure2_command(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "S/(S+R)" in out

    def test_deadlock_live_exit_code(self, capsys):
        assert main(["deadlock", "figure2"]) == 0
        assert "live" in capsys.readouterr().out

    def test_liveness_proof_command(self, capsys):
        assert main(["liveness", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "LIVE for all environments" in out

    def test_liveness_stuck_exit_code(self, capsys):
        # The hazardous ring wedges under the original protocol.
        assert main(["liveness", "figure2", "--variant",
                     "carloni"]) == 0  # full stations: still live
        code = main(["liveness", "pipeline:stages=2",
                     "--max-states", "100000"])
        assert code == 0

    def test_reproduce_single_experiment(self, capsys):
        assert main(["reproduce", "--experiment", "EXP-T2"]) == 0
        out = capsys.readouterr().out
        assert "(m-i)/m" in out

    def test_reproduce_to_directory(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "campaign"
        assert main(["reproduce", "--output", str(out_dir)]) == 0
        from repro.bench.runner import BENCH_RECORD_SCHEMA, EXPERIMENTS

        for exp_id in EXPERIMENTS:
            path = out_dir / f"{exp_id}.txt"
            assert path.exists(), exp_id
            assert path.read_text().startswith(f"[{exp_id}]")
            record_path = out_dir / f"BENCH_{exp_id}.json"
            assert record_path.exists(), exp_id
            record = json.loads(record_path.read_text())
            assert record["schema"] == BENCH_RECORD_SCHEMA
            assert record["bench"] == exp_id
            assert record["wall_seconds"] > 0
            assert record["counters"]["rows"] >= 0
            assert record["git_rev"]

    def test_verify_command(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestVersionFlag:
    def test_version_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro-lid ")
        assert "1." in out  # semantic version present

    def test_version_string_has_git_rev(self):
        from repro.cli import _version_string

        text = _version_string()
        # In a git checkout the revision rides along; elsewhere the
        # bare version must still render.
        assert text
        assert "\n" not in text


class TestGalsCommands:
    RING = "gals-ring:rates=1+1/2,shells=2"

    def test_analyze_gals(self, capsys):
        assert main(["analyze", "gals-chain:rates=1+1/2"]) == 0
        out = capsys.readouterr().out
        assert "GALS (2 clock domains)" in out
        assert "1/2" in out

    def test_deadlock_gals(self, capsys):
        assert main(["deadlock", self.RING]) == 0
        assert "live" in capsys.readouterr().out

    def test_deadlock_gals_codegen_refused(self):
        with pytest.raises(SystemExit, match="single_clock"):
            main(["deadlock", self.RING, "--backend", "codegen"])

    def test_inject_skeleton_cdc(self, capsys):
        assert main(["inject", "--smoke", "--topology", self.RING,
                     "--engine", "skeleton", "--faults", "cdc",
                     "--format", "json", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert '"bridge-overflow"' in out or '"bridge-underflow"' in out

    def test_inject_lid_engine_refuses_gals(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["inject", "--smoke", "--topology", self.RING,
                  "--no-cache"])
        message = str(excinfo.value.code)
        assert "single-clock" in message
        assert "--engine skeleton" in message


class TestObservabilityCommands:
    def test_trace_jsonl(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        path = tmp_path / "trace.jsonl"
        assert main(["trace", "figure1", "--cycles", "30",
                     "--output", str(path)]) == 0
        events = read_jsonl(str(path))
        assert events
        assert {ev.category for ev in events} >= {"token", "run"}
        # run/end marker sits at the final cycle boundary
        assert max(ev.cycle for ev in events) <= 30

    def test_trace_chrome_format(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert main(["trace", "figure1", "--cycles", "30",
                     "--format", "chrome", "--output", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
        assert any(e.get("ph") == "i" for e in payload["traceEvents"])

    def test_trace_skeleton_engine(self, tmp_path):
        from repro.obs import read_jsonl

        path = tmp_path / "trace.jsonl"
        assert main(["trace", "figure2", "--engine", "skeleton",
                     "--cycles", "20", "--output", str(path)]) == 0
        assert read_jsonl(str(path))

    def test_trace_to_stdout(self, capsys):
        assert main(["trace", "figure1", "--cycles", "10"]) == 0
        out = capsys.readouterr().out
        import json

        lines = [json.loads(line) for line in out.splitlines() if line]
        assert lines
        # The last line is the eventstream meta record (drop counts);
        # every line before it is a flat event with a cycle stamp.
        assert lines[-1]["meta"] == "eventstream"
        assert lines[-1]["dropped"] == 0
        assert all("cycle" in record for record in lines[:-1])

    def test_profile_table(self, capsys):
        assert main(["profile", "figure1", "--cycles", "50"]) == 0
        out = capsys.readouterr().out
        assert "publish+settle" in out
        assert "us/cycle" in out

    def test_profile_json_and_trace_out(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "prof.json"
        report_path = tmp_path / "report.json"
        assert main(["profile", "figure1", "--cycles", "50", "--json",
                     "--output", str(report_path),
                     "--trace-out", str(trace_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["cycles"] == 50
        assert "publish+settle" in report["phases"]
        payload = json.loads(trace_path.read_text())
        assert any(e.get("ph") == "X" for e in payload["traceEvents"])

    def test_analyze_metrics_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        assert main(["analyze", "figure1", "--cycles", "40",
                     "--metrics-out", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-metrics/v1"
        assert payload["metrics"]["lid/cycles"]["value"] == 40

    def test_reproduce_metrics_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "bench.json"
        assert main(["reproduce", "--experiment", "EXP-F2",
                     "--metrics-out", str(path)]) == 0
        payload = json.loads(path.read_text())
        metrics = payload["metrics"]
        assert metrics["bench/EXP-F2/wall_seconds"]["value"] > 0
        assert metrics["bench/EXP-F2/rows"]["value"] > 0


class TestExport:
    def test_dot_export(self, capsys):
        assert main(["export", "dot", "--topology", "figure1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "figure1"')

    def test_json_export(self, capsys):
        assert main(["export", "json", "--topology",
                     "ring:shells=2,relays=1"]) == 0
        import json

        data = json.loads(capsys.readouterr().out)
        assert len(data["edges"]) == 3  # two arcs + sink tap

    def test_json_roundtrip_through_cli(self, capsys):
        main(["export", "json", "--topology", "figure1"])
        import json

        from repro.graph import from_dict
        from repro.skeleton import system_throughput

        graph = from_dict(json.loads(capsys.readouterr().out))
        assert str(system_throughput(graph)) == "4/5"

    def test_vhdl_export(self, capsys):
        assert main(["export", "relay-vhdl", "--width", "4"]) == 0
        out = capsys.readouterr().out
        assert "entity relay_station is" in out
        assert "unsigned(3 downto 0)" in out

    def test_vhdl_to_file(self, tmp_path, capsys):
        path = tmp_path / "rs.vhd"
        assert main(["export", "half-relay-vhdl", "-o", str(path)]) == 0
        assert path.read_text().startswith("library ieee;")

    def test_dot_requires_topology(self):
        with pytest.raises(SystemExit):
            main(["export", "dot"])


class TestArgparseValidation:
    """Malformed flag values must exit 2 with a one-line argparse
    diagnostic, not surface as tracebacks mid-campaign."""

    @pytest.mark.parametrize("argv", [
        ["inject", "--smoke", "--jobs", "0"],
        ["inject", "--smoke", "--jobs", "-3"],
        ["inject", "--smoke", "--jobs", "many"],
        ["inject", "--smoke", "--faults", "bogus"],
        ["inject", "--smoke", "--faults", ","],
        ["inject", "--smoke", "--window", "abc"],
        ["inject", "--smoke", "--window", "9:3"],
        ["inject", "--smoke", "--window", "-1:5"],
        ["inject", "--smoke", "--window", "a:b"],
        ["deadlock", "figure2", "--jobs", "0"],
        ["serve", "--jobs", "0"],
        ["serve", "--queue-depth", "0"],
        ["client", "--concurrency", "0"],
    ])
    def test_bad_flag_exits_2(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_valid_faults_and_window_still_parse(self, capsys):
        assert main(["inject", "--smoke", "--faults", "stop,void",
                     "--window", "10:20", "--format", "json"]) == 0

    def test_client_requires_manifest(self):
        with pytest.raises(SystemExit, match="--manifest"):
            main(["client", "--port", "1"])

"""Fault models: what can go wrong in a LID implementation.

The paper's argument is that protocol-block implementation details
(registered vs. combinational stop, one vs. two registers) decide
whether a system survives adverse conditions.  This module gives those
adverse conditions a vocabulary: composable :class:`FaultSpec` records
naming a *kind* of corruption, a *target* (channel, relay station or
shell), and the cycle window in which it is active.

Wire faults (applied after the settle fixpoint, before monitors sample):

* ``stop-stuck-1`` / ``stop-stuck-0`` — the backward stop wire is stuck
  at a level from ``cycle`` to the end of the run;
* ``stop-glitch`` — the settled stop value is inverted for
  ``duration`` cycles (default one);
* ``delayed-stop`` — the wire presents the *previous* cycle's settled
  stop, modelling the unregistered-stop hazard the paper warns about: a
  designer who registers the stop of a stage without adding the second
  (aux) register makes every upstream learn of back pressure one cycle
  late;
* ``void-glitch`` / ``valid-stuck-0`` — the valid wire is forced low
  (the presented token becomes a void) for one cycle / until the end;
* ``valid-stuck-1`` — a phantom token: valid forced high with payload
  ``value`` (default 0);
* ``payload`` — the payload of the presented token is corrupted
  (``value`` if given, else a deterministic bit flip).

State faults (applied after the clock edge, visible next cycle):

* ``relay-drop`` — a relay-station data register loses its token;
* ``relay-duplicate`` — a full relay station re-captures its presented
  token into the skid slot, emitting it twice;
* ``shell-corrupt`` — a shell's valid output registers flip payload
  bits.

CDC faults (GALS systems only; applied after the clock edge to a
bisynchronous bridge's occupancy counter):

* ``bridge-overflow`` — a phantom write: the write-pointer
  synchronizer resolves a cycle early and the occupancy gains a token
  that was never produced (clamped at the bridge depth);
* ``bridge-underflow`` — a lost token: the read-pointer synchronizer
  resolves a cycle late and the occupancy drops a token that was never
  consumed (clamped at zero).

These target the ``<src>-><dst>.bridge`` names of the lowered IR and
only the skeleton campaign can run them — the token-level LID engine
refuses multi-clock graphs outright.

Fault lists are generated either exhaustively (every kind x target x
cycle of a window — the DAVOS-style systematic fault list) or by
seeded-random sampling of that space; both orders are deterministic, so
a campaign report depends only on ``(topology, variant, faults, cycles,
seed)``.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import InjectionError
from ..graph.model import SystemGraph
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant

#: Every concrete fault kind, grouped by the injection phase it uses.
WIRE_KINDS = (
    "stop-stuck-1", "stop-stuck-0", "stop-glitch", "delayed-stop",
    "void-glitch", "valid-stuck-0", "valid-stuck-1", "payload",
)
STATE_KINDS = ("relay-drop", "relay-duplicate", "shell-corrupt")
BRIDGE_KINDS = ("bridge-overflow", "bridge-underflow")
ALL_KINDS = WIRE_KINDS + STATE_KINDS + BRIDGE_KINDS

#: CLI-facing fault classes -> concrete kinds.  ``--faults stop,void``
#: selects the stop-wire and void-wire models the paper reasons about.
FAULT_CLASSES: Dict[str, Tuple[str, ...]] = {
    "stop": ("stop-glitch", "stop-stuck-1", "stop-stuck-0"),
    "void": ("void-glitch", "valid-stuck-0"),
    "phantom": ("valid-stuck-1",),
    "payload": ("payload",),
    "drop": ("relay-drop",),
    "duplicate": ("relay-duplicate",),
    "delayed-stop": ("delayed-stop",),
    "shell": ("shell-corrupt",),
    "cdc": BRIDGE_KINDS,
}

#: Kinds that touch only valid/stop wires (no payloads) — the subset a
#: skeleton (data-free) engine can also express at the system boundary.
CONTROL_ONLY_KINDS = frozenset(
    k for k in ALL_KINDS if k.startswith(("stop", "void", "valid",
                                          "delayed"))
)


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One experiment of a campaign: a single localized fault.

    ``duration`` counts active cycles; ``0`` means "until the end of
    the run" (a stuck-at).  ``value`` parameterizes payload faults.
    """

    kind: str
    target: str
    cycle: int
    duration: int = 1
    value: Any = None

    def __post_init__(self):
        if self.kind not in ALL_KINDS:
            raise InjectionError(
                f"unknown fault kind {self.kind!r} (choices: "
                f"{', '.join(ALL_KINDS)})"
            )
        if self.cycle < 0:
            raise InjectionError(f"fault cycle must be >= 0: {self}")
        if self.duration < 0:
            raise InjectionError(f"fault duration must be >= 0: {self}")

    @property
    def phase(self) -> str:
        """Scheduler injection phase this fault uses.

        Bridge (CDC) faults count as state faults: the occupancy nudge
        lands after the clock edge and is visible next cycle.
        """
        return "wire" if self.kind in WIRE_KINDS else "state"

    @property
    def stuck(self) -> bool:
        """Active until the end of the run?"""
        return self.duration == 0

    def active(self, cycle: int) -> bool:
        """Is the fault active during *cycle*?"""
        if cycle < self.cycle:
            return False
        return self.stuck or cycle < self.cycle + self.duration

    def label(self) -> str:
        """Compact, stable identifier used in reports and event fields."""
        span = "stuck" if self.stuck else (
            f"+{self.duration}" if self.duration != 1 else "")
        return f"{self.kind}@{self.target}@c{self.cycle}{span}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible view (reports are byte-reproducible)."""
        return {
            "kind": self.kind,
            "target": self.target,
            "cycle": self.cycle,
            "duration": self.duration,
            "value": self.value,
        }


def resolve_classes(classes: Sequence[str]) -> Tuple[str, ...]:
    """Expand fault class names (or concrete kinds) into kinds."""
    kinds: List[str] = []
    for name in classes:
        name = name.strip()
        if not name:
            continue
        if name in FAULT_CLASSES:
            kinds.extend(FAULT_CLASSES[name])
        elif name in ALL_KINDS:
            kinds.append(name)
        else:
            raise InjectionError(
                f"unknown fault class {name!r} (classes: "
                f"{', '.join(sorted(FAULT_CLASSES))}; kinds: "
                f"{', '.join(ALL_KINDS)})"
            )
    seen = set()
    unique = []
    for kind in kinds:
        if kind not in seen:
            seen.add(kind)
            unique.append(kind)
    return tuple(unique)


@dataclasses.dataclass(frozen=True)
class TargetSet:
    """Injectable names of an elaborated system, in wiring order."""

    channels: Tuple[str, ...]
    relays: Tuple[str, ...]          # all relay stations (drop)
    full_relays: Tuple[str, ...]     # two-register stations (duplicate)
    shells: Tuple[str, ...]
    bridges: Tuple[str, ...] = ()    # bisynchronous bridges (CDC)


def enumerate_targets(
    graph: SystemGraph,
    variant: ProtocolVariant = DEFAULT_VARIANT,
) -> TargetSet:
    """Discover *graph*'s injectable names, once.

    Single-clock graphs elaborate to the token-level system;
    elaboration is deterministic (same graph -> same channel and relay
    names), so the probe system can be thrown away: the names resolve
    identically on every per-experiment elaboration.

    Multi-clock (GALS) graphs cannot elaborate — the LID engine is
    single-clock — so their names come from the skeleton lowering
    instead: boundary hops as channels (the only skeleton-expressible
    wire targets anyway), relay and shell names, and the bridges.  The
    two name spaces intentionally differ (``#N`` channel suffixes vs
    ``[seg]`` hop suffixes); each campaign engine resolves the set it
    generated.
    """
    from ..ir import SINK, SRC, lower

    low = lower(graph)
    if not low.single_clock:
        return TargetSet(
            channels=tuple(
                hop.name for hop in low.hops
                if hop.producer_kind == SRC or hop.consumer_kind == SINK),
            relays=tuple(r.name for r in low.relays),
            full_relays=tuple(
                r.name for r in low.relays if r.spec == "full"),
            shells=tuple(low.nodes[i].name for i in low.shell_ids),
            bridges=low.bridge_names,
        )

    from ..lid.relay import RelayStation

    system = graph.elaborate(variant=variant)
    return TargetSet(
        channels=tuple(chan.name for chan in system.channels),
        relays=tuple(system.relays),
        full_relays=tuple(
            name for name, relay in system.relays.items()
            if isinstance(relay, RelayStation)
        ),
        shells=tuple(system.shells),
    )


def _targets_for(kind: str, targets: TargetSet) -> Tuple[str, ...]:
    if kind in WIRE_KINDS:
        return targets.channels
    if kind in BRIDGE_KINDS:
        return targets.bridges
    if kind == "relay-drop":
        return targets.relays
    if kind == "relay-duplicate":
        return targets.full_relays
    return targets.shells


def generate_faults(
    graph: SystemGraph,
    *,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    classes: Sequence[str] = ("stop", "void"),
    cycles: int = 200,
    window: Optional[Tuple[int, int]] = None,
    exhaustive: bool = False,
    samples: int = 64,
    seed: int = 0,
) -> List[FaultSpec]:
    """Build a deterministic fault list for a campaign.

    The *exhaustive* list enumerates every ``kind x target x cycle`` of
    the window (``window`` defaults to the full run) in a stable order;
    otherwise ``samples`` specs are drawn from that space with
    ``random.Random(seed)``.  Stuck-at kinds get ``duration=0``
    (active to the end of the run), everything else a single cycle.
    """
    kinds = resolve_classes(classes)
    if not kinds:
        raise InjectionError("no fault kinds selected")
    lo, hi = window if window is not None else (0, cycles)
    if not 0 <= lo < hi <= cycles:
        raise InjectionError(
            f"bad cycle window [{lo}, {hi}) for a {cycles}-cycle run")
    targets = enumerate_targets(graph, variant)

    universe: List[FaultSpec] = []
    for kind in kinds:
        # Stuck-ats and the delayed-stop hazard are structural: once
        # present they stay for the rest of the run.  Glitches, payload
        # corruption and register SEUs are single-cycle events.
        duration = 0 if ("stuck" in kind or kind == "delayed-stop") else 1
        for target in _targets_for(kind, targets):
            for cycle in range(lo, hi):
                universe.append(FaultSpec(kind, target, cycle, duration))
    if not universe:
        raise InjectionError(
            f"no injectable targets for classes {list(classes)} in "
            f"{graph.name!r}")
    if exhaustive:
        return universe
    rng = random.Random(seed)
    if samples >= len(universe):
        return universe
    return rng.sample(universe, samples)

"""Campaign manifests: the validated request schema of ``repro-lid serve``.

A **manifest** is the JSON body a client POSTs to the campaign
service: which kind of work to run (fault campaign, deadlock check, or
a figure-style data series), on which topology spec, with which
parameters.  Every field mirrors the corresponding ``repro-lid`` CLI
flag — same names, same defaults — because the service's determinism
contract is *byte-identity with the offline CLI*: a manifest and the
equivalent ``repro-lid inject``/``deadlock``/``series`` invocation
produce the same output bytes and the same content-addressed ledger
``run_id``.

Validation happens entirely up front (:meth:`Manifest.from_dict`):
unknown kinds, topologies, variants, fault classes and malformed
windows raise :class:`ManifestError` with a one-line message that maps
to an HTTP 400 — nothing reaches the worker pool that could surface as
a traceback from deep inside the engines.

:meth:`Manifest.params` renders the **canonical parameter dict** — the
exact dict the CLI puts into ledger records — so the service's span and
run ids line up with offline runs by construction.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

#: Work kinds the service dispatches.
KINDS = ("campaign", "deadlock", "series")

#: CLI parity: `repro-lid inject --engine/--backend` choices.
ENGINES = ("lid", "skeleton")
BACKENDS = ("auto", "scalar", "vectorized", "bitsim", "codegen")
DEADLOCK_BACKENDS = ("scalar", "codegen")
FORMATS = ("json", "table")
VARIANTS = ("casu", "carloni")


class ManifestError(ValueError):
    """A manifest failed validation (maps to HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ManifestError(message)


def _as_int(value: Any, field: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ManifestError(f"{field} must be an integer, "
                            f"got {value!r}")
    return value


def _as_bool(value: Any, field: str) -> bool:
    if not isinstance(value, bool):
        raise ManifestError(f"{field} must be a boolean, got {value!r}")
    return value


def validate_topology(spec: Any) -> str:
    """A topology spec string with a known family name."""
    from ..graph.specs import TOPOLOGY_CHOICES

    _require(isinstance(spec, str) and bool(spec),
             f"topology must be a non-empty spec string, got {spec!r}")
    name = spec.partition(":")[0]
    _require(name in TOPOLOGY_CHOICES,
             f"unknown topology {name!r} (choices: "
             f"{', '.join(TOPOLOGY_CHOICES)})")
    return spec


def validate_faults(classes: Any) -> Tuple[str, ...]:
    """Fault classes/kinds as a tuple; every item must be known."""
    from ..errors import InjectionError
    from ..inject.faults import resolve_classes

    if isinstance(classes, str):
        classes = [item.strip() for item in classes.split(",")
                   if item.strip()]
    _require(isinstance(classes, (list, tuple)) and bool(classes),
             "faults must be a non-empty comma-separated string or list")
    items = tuple(str(item) for item in classes)
    try:
        resolve_classes(items)
    except InjectionError as exc:
        raise ManifestError(str(exc)) from None
    return items


def validate_window(window: Any,
                    cycles: int) -> Optional[Tuple[int, int]]:
    """``[lo, hi)`` as an int pair inside the run, or ``None``."""
    if window is None:
        return None
    if isinstance(window, str):
        lo_text, sep, hi_text = window.partition(":")
        _require(bool(sep), f"window must be 'LO:HI', got {window!r}")
        try:
            window = [int(lo_text), int(hi_text)]
        except ValueError:
            raise ManifestError(
                f"window bounds must be integers, got {window!r}"
            ) from None
    _require(isinstance(window, (list, tuple)) and len(window) == 2,
             f"window must be a [lo, hi) pair, got {window!r}")
    lo, hi = (_as_int(window[0], "window lo"),
              _as_int(window[1], "window hi"))
    _require(0 <= lo < hi <= cycles,
             f"bad cycle window [{lo}, {hi}) for a {cycles}-cycle run")
    return (lo, hi)


@dataclasses.dataclass(frozen=True)
class Manifest:
    """One validated unit of service work (picklable, hashable).

    Field defaults mirror the CLI's argparse defaults exactly;
    :attr:`stream` is transport-level (NDJSON progress) and never
    enters the canonical identity.
    """

    kind: str
    topology: str = "feedback"
    seed: int = 0
    variant: str = "casu"
    # campaign
    engine: str = "lid"
    backend: str = "auto"
    faults: Tuple[str, ...] = ("stop", "void")
    cycles: int = 200
    samples: int = 64
    exhaustive: bool = False
    window: Optional[Tuple[int, int]] = None
    strict: bool = False
    format: str = "json"
    # deadlock
    max_cycles: int = 10_000
    deadlock_backend: str = "scalar"
    # series
    which: Optional[str] = None
    # transport
    stream: bool = False

    #: Manifest fields clients may set, by kind (plus the shared ones).
    _SHARED = ("kind", "stream")
    _BY_KIND = {
        "campaign": ("topology", "seed", "variant", "engine", "backend",
                     "faults", "cycles", "samples", "exhaustive",
                     "window", "strict", "format", "smoke"),
        "deadlock": ("topology", "seed", "variant", "max_cycles",
                     "deadlock_backend"),
        "series": ("which",),
    }

    @classmethod
    def from_dict(cls, payload: Any) -> "Manifest":
        """Validate a client JSON body into a :class:`Manifest`."""
        _require(isinstance(payload, dict),
                 f"manifest must be a JSON object, "
                 f"got {type(payload).__name__}")
        kind = payload.get("kind")
        _require(kind in KINDS,
                 f"manifest kind must be one of {', '.join(KINDS)}, "
                 f"got {kind!r}")
        allowed = set(cls._SHARED) | set(cls._BY_KIND[kind])
        unknown = sorted(set(payload) - allowed)
        _require(not unknown,
                 f"unknown manifest field(s) for kind {kind!r}: "
                 f"{', '.join(unknown)}")
        fields: Dict[str, Any] = {"kind": kind}
        if "stream" in payload:
            fields["stream"] = _as_bool(payload["stream"], "stream")

        if kind == "series":
            from ..analysis.sweep import SERIES_GENERATORS

            which = payload.get("which")
            _require(which in SERIES_GENERATORS,
                     f"series 'which' must be one of "
                     f"{', '.join(sorted(SERIES_GENERATORS))}, "
                     f"got {which!r}")
            fields["which"] = which
            return cls(**fields)

        fields["topology"] = validate_topology(
            payload.get("topology", cls.topology))
        fields["seed"] = _as_int(payload.get("seed", cls.seed), "seed")
        variant = payload.get("variant", cls.variant)
        _require(variant in VARIANTS,
                 f"variant must be one of {', '.join(VARIANTS)}, "
                 f"got {variant!r}")
        fields["variant"] = variant

        if kind == "deadlock":
            max_cycles = _as_int(payload.get("max_cycles",
                                             cls.max_cycles),
                                 "max_cycles")
            _require(max_cycles >= 1,
                     f"max_cycles must be >= 1, got {max_cycles}")
            fields["max_cycles"] = max_cycles
            backend = payload.get("deadlock_backend",
                                  cls.deadlock_backend)
            _require(backend in DEADLOCK_BACKENDS,
                     f"deadlock_backend must be one of "
                     f"{', '.join(DEADLOCK_BACKENDS)}, got {backend!r}")
            fields["deadlock_backend"] = backend
            return cls(**fields)

        # campaign
        engine = payload.get("engine", cls.engine)
        _require(engine in ENGINES,
                 f"engine must be one of {', '.join(ENGINES)}, "
                 f"got {engine!r}")
        fields["engine"] = engine
        backend = payload.get("backend", cls.backend)
        _require(backend in BACKENDS,
                 f"backend must be one of {', '.join(BACKENDS)}, "
                 f"got {backend!r}")
        fields["backend"] = backend
        fields["faults"] = validate_faults(
            payload.get("faults", ",".join(cls.faults)))
        if payload.get("smoke"):
            _as_bool(payload["smoke"], "smoke")
            # CLI parity: `inject --smoke` pins a small fast campaign.
            cycles, samples = 64, 12
            _require("cycles" not in payload
                     and "samples" not in payload
                     and "exhaustive" not in payload,
                     "smoke fixes cycles/samples/exhaustive; drop them")
        else:
            cycles = _as_int(payload.get("cycles", cls.cycles), "cycles")
            samples = _as_int(payload.get("samples", cls.samples),
                              "samples")
        _require(cycles >= 1, f"cycles must be >= 1, got {cycles}")
        _require(samples >= 1, f"samples must be >= 1, got {samples}")
        fields["cycles"], fields["samples"] = cycles, samples
        if "exhaustive" in payload:
            fields["exhaustive"] = _as_bool(payload["exhaustive"],
                                            "exhaustive")
        fields["window"] = validate_window(payload.get("window"), cycles)
        if "strict" in payload:
            fields["strict"] = _as_bool(payload["strict"], "strict")
        fmt = payload.get("format", cls.format)
        _require(fmt in FORMATS,
                 f"format must be one of {', '.join(FORMATS)}, "
                 f"got {fmt!r}")
        fields["format"] = fmt
        return cls(**fields)

    def to_dict(self) -> Dict[str, Any]:
        """Round-trippable plain-dict form (what travels to workers)."""
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.kind == "series":
            payload["which"] = self.which
            return payload
        payload.update(topology=self.topology, seed=self.seed,
                       variant=self.variant)
        if self.kind == "deadlock":
            payload.update(max_cycles=self.max_cycles,
                           deadlock_backend=self.deadlock_backend)
            return payload
        payload.update(engine=self.engine, backend=self.backend,
                       faults=list(self.faults), cycles=self.cycles,
                       samples=self.samples, exhaustive=self.exhaustive,
                       window=(list(self.window) if self.window
                               else None),
                       strict=self.strict, format=self.format)
        return payload

    # -- canonical identity (ledger / cache / coalescing) --------------

    @property
    def record_kind(self) -> str:
        """The ledger record kind the CLI writes for this work."""
        return {"campaign": "inject-campaign",
                "deadlock": "deadlock-check",
                "series": "series"}[self.kind]

    def params(self) -> Dict[str, Any]:
        """The canonical params dict — key-for-key the CLI's ledger
        params, so served and offline runs share span and run ids."""
        if self.kind == "campaign":
            return {
                "engine": self.engine,
                "backend": self.backend,
                "cycles": self.cycles,
                "samples": self.samples,
                "seed": self.seed,
                "classes": list(self.faults),
                "exhaustive": bool(self.exhaustive),
                "window": list(self.window) if self.window else None,
                "strict": bool(self.strict),
            }
        if self.kind == "deadlock":
            return {"max_cycles": self.max_cycles, "seed": self.seed}
        return {"which": self.which}

    def span(self, fingerprint: Optional[str]) -> str:
        """Deterministic pre-run identity (see :func:`repro.obs.span_id`).

        *fingerprint* is the design's :func:`repro.exec.graph_fingerprint`
        (``None`` for series work) — identical ``fingerprint x params``
        manifests share a span, which is exactly the coalescing and
        response-cache key the service uses.
        """
        from ..obs import span_id

        variant = None if self.kind == "series" else self.variant
        return span_id(self.record_kind, fingerprint, variant,
                       self.params())

"""Tests for the structural lint (the paper's implementation rules)."""

import pytest

from repro import LidSystem, pearls
from repro.errors import CombinationalLoopError, StructuralError
from repro.lid.lint import (
    check_combinational_stop_cycles,
    check_shell_to_shell,
    lint_system,
    relay_census,
)


def shells_back_to_back():
    system = LidSystem("bad")
    src = system.add_source("src")
    a = system.add_shell("A", pearls.Identity())
    b = system.add_shell("B", pearls.Identity())
    sink = system.add_sink("out")
    system.connect(src, a)
    system.connect(a, b, relays=0)  # violation: no relay station
    system.connect(b, sink)
    return system


def ring(specs):
    system = LidSystem("ring")
    a = system.add_shell("A", pearls.Identity())
    b = system.add_shell("B", pearls.Identity())
    sink = system.add_sink("out")
    system.connect(a, b, relays=specs[0])
    system.connect(b, a, relays=specs[1])
    system.connect(a, sink)
    return system


class TestShellToShellRule:
    def test_direct_connection_rejected(self):
        with pytest.raises(StructuralError, match="relay station"):
            check_shell_to_shell(shells_back_to_back())

    def test_finalize_strict_enforces(self):
        with pytest.raises(StructuralError):
            shells_back_to_back().finalize(strict=True)

    def test_finalize_non_strict_allows(self):
        system = shells_back_to_back()
        system.finalize(strict=False)
        system.run(5, reset=True)  # still simulates fine

    def test_half_relay_satisfies_rule(self):
        system = LidSystem("ok")
        src = system.add_source("src")
        a = system.add_shell("A", pearls.Identity())
        b = system.add_shell("B", pearls.Identity())
        sink = system.add_sink("out")
        system.connect(src, a)
        system.connect(a, b, relays=["half"])
        system.connect(b, sink)
        check_shell_to_shell(system)  # no raise

    def test_source_to_shell_direct_allowed(self):
        system = LidSystem("ok")
        src = system.add_source("src")
        a = system.add_shell("A", pearls.Identity())
        sink = system.add_sink("out")
        system.connect(src, a)
        system.connect(a, sink)
        lint_system(system)


class TestStopCycleRule:
    def test_all_half_loop_rejected(self):
        system = ring([["half"], ["half"]])
        with pytest.raises(CombinationalLoopError, match="full relay"):
            check_combinational_stop_cycles(system)

    def test_one_full_station_breaks_cycle(self):
        system = ring([["half"], ["full"]])
        check_combinational_stop_cycles(system)  # no raise

    def test_registered_half_breaks_cycle(self):
        system = ring([["half"], ["half-registered"]])
        check_combinational_stop_cycles(system)

    def test_half_in_feedforward_fine(self):
        system = LidSystem("ff")
        src = system.add_source("src")
        a = system.add_shell("A", pearls.Identity())
        sink = system.add_sink("out")
        system.connect(src, a, relays=["half"])
        system.connect(a, sink, relays=["half"])
        lint_system(system)

    def test_error_message_names_the_cycle(self):
        system = ring([["half"], ["half"]])
        with pytest.raises(CombinationalLoopError, match="A"):
            check_combinational_stop_cycles(system)


class TestCensus:
    def test_relay_census(self):
        system = ring([["half"], ["full", "full"]])
        full, half = relay_census(system)
        assert (full, half) == (2, 1)

"""Deadlock checking via skeleton simulation.

The paper's liveness strategy: liveness is topology dependent, so
instead of verifying the protocol globally, *"simulate the system up to
the transient's extinction; either the deadlock will show, or will be
forever avoided"* — on the cheap valid/stop skeleton.

Two failure modes are distinguished:

* **hard deadlock** — under the optimistic (least-fixpoint) resolution
  of the stop network, the periodic regime contains zero shell firings:
  no block will ever fire again;
* **potential deadlock** — the stop equations admit more than one
  fixpoint in some reachable cycle (only possible when a combinational
  stop cycle exists, i.e. half relay stations — or direct shell-shell
  wires — on loops), or the pessimistic (greatest-fixpoint) resolution
  stalls even though the optimistic one runs.  Real gates could settle
  either way, so the design is hazardous: this is the paper's
  *"potential deadlocks iff half relay stations are present in loops"*.

Because simulation runs until state periodicity, the verdict is exact
for the given source/sink scripts — the paper's "forever avoided"
guarantee.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from ..graph.model import SystemGraph
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from .sim import SkeletonResult, SkeletonSim


@dataclasses.dataclass
class DeadlockVerdict:
    """Outcome of :func:`check_deadlock`.

    ``inconclusive`` marks a run whose cycle budget expired before the
    skeleton state became periodic: nothing can be said about liveness
    either way (``optimistic`` is then ``None`` and ``transient`` /
    ``period`` are ``-1`` / ``0``).  Raise ``max_cycles`` to resolve it.
    """

    deadlocked: bool
    potential: bool
    transient: int
    period: int
    detail: str
    optimistic: Optional[SkeletonResult] = None
    pessimistic: Optional[SkeletonResult] = None
    inconclusive: bool = False

    @property
    def live(self) -> bool:
        """Fully live: neither hard nor potential deadlock was proven.

        An inconclusive verdict is *not* live: the check never reached
        the periodic regime that would justify the paper's "forever
        avoided" claim.
        """
        return (not self.deadlocked and not self.potential
                and not self.inconclusive)


def _sim_class(backend: str):
    """Map a deadlock ``backend`` name to its simulator class.

    Only the per-instance engines make sense here (the probes are
    single simulators run to periodicity); the compiled engine is
    opt-in like everywhere else.
    """
    if backend == "codegen":
        from .codegen import CodegenSkeletonSim

        return CodegenSkeletonSim
    if backend != "scalar":
        raise ValueError(
            f"unknown deadlock backend {backend!r} "
            "(expected 'scalar' or 'codegen')")
    return SkeletonSim


def _probe(args) -> tuple:
    """Run one fixpoint probe inside a worker process.

    Returns the picklable pair ``("ok", SkeletonResult)`` or
    ``("timeout", None)`` — a raised :class:`PeriodicityTimeout` means
    different things for the two probes, so the *caller* owns that
    interpretation, not the worker.
    """
    graph_ref, variant, fixpoint, max_cycles, sources, sinks, backend \
        = args
    from ..errors import PeriodicityTimeout

    sim = _sim_class(backend)(
        graph_ref.materialize(),
        variant=variant,
        fixpoint=fixpoint,
        source_patterns=sources,
        sink_patterns=sinks,
    )
    try:
        return ("ok", sim.run(max_cycles=max_cycles))
    except PeriodicityTimeout:
        return ("timeout", None)


def _merge_probe_metrics(telemetry, probe: str, sim: SkeletonSim) -> None:
    """Fold one probe's metrics snapshot into the caller's registry.

    Each probe gets its own ``deadlock/<probe>/`` namespace so the
    optimistic and pessimistic passes never double-count each other's
    skeleton counters.
    """
    if telemetry is None or telemetry.metrics is None:
        return
    snapshot = sim.metrics_snapshot()
    telemetry.metrics.merge_snapshot(
        {f"deadlock/{probe}/{name}": record
         for name, record in snapshot.items()})


def _pattern_key(patterns) -> tuple:
    return tuple(sorted(
        (name, tuple(bool(b) for b in bits))
        for name, bits in (patterns or {}).items()
    ))


def check_deadlock(
    graph: SystemGraph,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    max_cycles: int = 10_000,
    source_patterns: Optional[Dict[str, Sequence[bool]]] = None,
    sink_patterns: Optional[Dict[str, Sequence[bool]]] = None,
    *,
    jobs: int = 1,
    graph_ref=None,
    cache=None,
    telemetry=None,
    backend: str = "scalar",
) -> DeadlockVerdict:
    """Simulate the skeleton until periodicity and classify liveness.

    When no periodic regime appears within *max_cycles* the verdict is
    ``inconclusive`` (not a raised :class:`TimeoutError`): callers get a
    one-line diagnostic in ``detail`` and can retry with a larger
    budget.

    *telemetry* (a :class:`repro.obs.Telemetry`) instruments the
    probes; because worker processes cannot write into the caller's
    registries, a telemetry-carrying check always probes serially —
    the verdict is identical either way, only the wall clock differs.

    ``jobs > 1`` runs the optimistic and pessimistic probes in separate
    worker processes when the stop network may be ambiguous (the only
    case that needs both); the verdict is identical to the serial one
    for any ``jobs`` value.  The graph must be rebuildable inside the
    workers — pass *graph_ref* (a :class:`repro.exec.GraphRef`) for
    graphs holding unpicklable pearls/streams; without one the check
    silently falls back to serial probing, which returns the same
    verdict.  *cache* (a :class:`repro.exec.ResultCache`) memoises the
    whole verdict keyed on graph fingerprint, variant, cycle budget and
    script patterns — *backend* is deliberately absent from the key:
    the engines are bit-exact, so a verdict computed by one serves all.

    *backend* picks the probe engine: ``"scalar"`` (default) or
    ``"codegen"`` (compiled per-topology cycle functions — same
    verdict, less wall clock on long transients).
    """
    from ..errors import ExecutionError, PeriodicityTimeout
    from ..exec import GraphRef, graph_fingerprint, map_deterministic

    sim_class = _sim_class(backend)
    if backend == "codegen":
        # Fail fast, before any probe (possibly a worker process) trips
        # over the compiled engine's single-clock constructor guard.
        from .backend import _is_single_clock, _single_clock_reason

        if not _is_single_clock(graph):
            raise ValueError(_single_clock_reason(graph, "codegen"))

    key = None
    if cache is not None:
        key = cache.key(
            "deadlock", graph_fingerprint(graph), variant, max_cycles,
            _pattern_key(source_patterns), _pattern_key(sink_patterns))
        hit = cache.get(key)
        if isinstance(hit, DeadlockVerdict):
            return hit

    def _done(verdict: DeadlockVerdict) -> DeadlockVerdict:
        if cache is not None:
            cache.put(key, verdict)
        return verdict

    optimistic_sim = sim_class(
        graph,
        variant=variant,
        fixpoint="least",
        source_patterns=source_patterns,
        sink_patterns=sink_patterns,
        telemetry=telemetry,
    )
    # Ambiguity potential is a static topology property, so whether the
    # pessimistic probe will be needed is known before running anything
    # — that is what makes speculative parallel probing exact.
    needs_pessimistic = optimistic_sim._may_be_ambiguous
    opt_status = pess_status = None
    optimistic = pessimistic = None

    # Telemetry registries live in this process; speculative worker
    # probes could not report into them, so instrumented checks always
    # probe serially (the verdict is jobs-invariant anyway).
    parallel_ok = jobs > 1 and needs_pessimistic and telemetry is None
    ref = graph_ref
    if parallel_ok and ref is None:
        try:
            ref = GraphRef.from_graph(graph)
        except ExecutionError:
            ref = None  # unpicklable graph: probe serially below

    if parallel_ok and ref is not None:
        probes = [
            (ref, variant, mode, max_cycles,
             source_patterns, sink_patterns, backend)
            for mode in ("least", "greatest")
        ]
        (opt_status, optimistic), (pess_status, pessimistic) = (
            map_deterministic(_probe, probes, jobs=2))
    else:
        try:
            optimistic = optimistic_sim.run(max_cycles=max_cycles)
            opt_status = "ok"
        except PeriodicityTimeout:
            opt_status = "timeout"
        _merge_probe_metrics(telemetry, "optimistic", optimistic_sim)

    if opt_status == "timeout":
        return _done(DeadlockVerdict(
            deadlocked=False,
            potential=False,
            transient=-1,
            period=0,
            detail=(
                f"inconclusive: no periodic regime within {max_cycles} "
                f"cycles — raise --max-cycles to let the transient "
                f"extinguish"
            ),
            inconclusive=True,
        ))

    potential = optimistic.potential
    detail = ""
    if optimistic.deadlocked:
        detail = (
            f"hard deadlock: periodic window of {optimistic.period} cycles "
            f"after cycle {optimistic.transient} contains no shell firing"
        )
        # The serial path never probes past a hard deadlock; discard a
        # speculative pessimistic result to keep verdicts identical.
        pessimistic = None
        pess_status = None
    if not optimistic.deadlocked and potential:
        detail = (
            f"stop network ambiguous from cycle "
            f"{optimistic.potential_deadlock_cycle}: least and greatest "
            f"fixpoints disagree (combinational stop cycle is active)"
        )
    if needs_pessimistic and not optimistic.deadlocked:
        if pess_status is None:
            pessimistic_sim = sim_class(
                graph,
                variant=variant,
                fixpoint="greatest",
                source_patterns=source_patterns,
                sink_patterns=sink_patterns,
                telemetry=telemetry,
            )
            try:
                pessimistic = pessimistic_sim.run(max_cycles=max_cycles)
                pess_status = "ok"
            except PeriodicityTimeout:
                pess_status = "timeout"
            _merge_probe_metrics(telemetry, "pessimistic",
                                 pessimistic_sim)
        if pess_status == "timeout":
            return _done(DeadlockVerdict(
                deadlocked=False,
                potential=potential,
                transient=optimistic.transient,
                period=optimistic.period,
                detail=(
                    f"inconclusive: pessimistic stop resolution found no "
                    f"periodic regime within {max_cycles} cycles"
                ),
                optimistic=optimistic,
                inconclusive=True,
            ))
        if pessimistic.deadlocked and not potential:
            potential = True
            detail = (
                "pessimistic stop resolution deadlocks although the "
                "optimistic one runs: hazardous combinational stop cycle"
            )

    return _done(DeadlockVerdict(
        deadlocked=optimistic.deadlocked,
        potential=potential,
        transient=optimistic.transient,
        period=optimistic.period,
        detail=detail or "live: periodic regime fires every shell",
        optimistic=optimistic,
        pessimistic=pessimistic,
    ))


def is_deadlock_free_class(graph: SystemGraph) -> Optional[str]:
    """Static sufficient conditions for deadlock freedom (paper's list).

    Returns the name of the first matching rule, or ``None`` when no
    static rule applies (the system then needs the skeleton check):

    * ``"feed-forward"`` — the block graph is acyclic (possibly with
      reconvergence);
    * ``"all-full-relay-stations"`` — every relay station is full.
    """
    if graph.is_feedforward():
        return "feed-forward"
    if graph.relay_count() == graph.relay_count("full"):
        return "all-full-relay-stations"
    from .. import graph as _graph_pkg  # local import to avoid a cycle

    if not _graph_pkg.half_relays_on_loops(graph):
        return "no-half-relay-stations-on-loops"
    return None

"""Gate-level relay stations, as the paper implements them.

Structural netlists of the full and half relay stations, matching the
behavioural semantics of :mod:`repro.lid.relay` gate for gate:

**Full relay station** — datapath: ``main`` and ``aux`` data registers
with their valid bits; control: the equivalent of the paper's FSM with
states EMPTY / HALF (one token) / FULL (two tokens), encoded one-hot in
``(main_valid, aux_valid)``; the registered stop output is exactly the
``aux_valid`` bit (the station pushes back precisely while its skid
slot is in use — the two-register minimum made visible in gates).

**Half relay station** — one data register and the combinationally
transparent stop (``stop_out = stop_in AND main_valid`` under the
refined protocol, ``stop_out = stop_in`` under the original).

``tests/rtl`` co-simulate these netlists against the behavioural spec
FSMs over exhaustive input sequences.
"""

from __future__ import annotations

from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from .netlist import Netlist

#: Primary port names shared by both stations.
RS_INPUTS = ("in_data", "in_valid", "stop_in")
RS_OUTPUTS = ("out_data", "out_valid", "stop_out")


def full_relay_station_netlist(width: int = 8,
                               name: str = "relay_station") -> Netlist:
    """Structural full relay station (2 data registers, registered stop)."""
    nl = Netlist(name)
    in_data = nl.add_input("in_data", width)
    in_valid = nl.add_input("in_valid")
    stop_in = nl.add_input("stop_in")
    out_data = nl.add_output("out_data", width)
    out_valid = nl.add_output("out_valid")
    stop_out = nl.add_output("stop_out")

    # State registers (declared first so control can reference them).
    main_v = nl.net("main_valid")
    aux_v = nl.net("aux_valid")
    main_d = nl.net("main_data", width)
    aux_d = nl.net("aux_data", width)

    # Control equations -----------------------------------------------------
    # free: the main slot may be (over)written this cycle.
    blocked = nl.g_and(main_v, stop_in, "blocked")
    free = nl.g_not(blocked, "free")
    # acc: a token is taken from the input wires this cycle.
    n_stop_reg = nl.g_not(aux_v, "n_stop_reg")
    acc = nl.g_and(in_valid, n_stop_reg, "acc")

    # main <= aux when the skid slot drains into a freed main slot.
    sel_aux = nl.g_and(aux_v, free, "sel_aux")
    # main <= in when main is free, no skid token waits, and input flows.
    n_aux = nl.g_not(aux_v, "n_aux")
    free_direct = nl.g_and(n_aux, free, "free_direct")
    sel_in = nl.g_and(free_direct, acc, "sel_in")

    hold_main = nl.g_not(free, "hold_main")
    kept = nl.g_and(hold_main, main_v, "kept")
    main_v_next = nl.g_or(nl.g_or(sel_aux, sel_in), kept, "main_valid_next")

    # Datapath: main mux tree (hold -> in -> aux priority encoded).
    after_in = nl.g_mux(main_d, in_data, sel_in, "main_after_in", width)
    main_d_next = nl.g_mux(after_in, aux_d, sel_aux, "main_data_next", width)

    # aux fills with the in-flight token when main is blocked.
    aux_set = nl.g_and(free_direct_not := nl.g_and(n_aux, hold_main,
                                                   "aux_room_blocked"),
                       acc, "aux_set")
    aux_keep = nl.g_and(aux_v, hold_main, "aux_keep")
    aux_v_next = nl.g_or(aux_set, aux_keep, "aux_valid_next")
    aux_d_next = nl.g_mux(aux_d, in_data, aux_set, "aux_data_next", width)

    # Registers ---------------------------------------------------------------
    nl.g_reg("main_valid_next", main_v, init=0)
    nl.g_reg("aux_valid_next", aux_v, init=0)
    nl.g_reg("main_data_next", main_d, width=width)
    nl.g_reg("aux_data_next", aux_d, width=width)

    # Outputs -------------------------------------------------------------------
    nl.cell("BUF", "u_outd", a=main_d, y=out_data, width=width)
    nl.cell("BUF", "u_outv", a=main_v, y=out_valid)
    # The registered stop is exactly the skid-slot occupancy.
    nl.cell("BUF", "u_stop", a=aux_v, y=stop_out)
    nl.validate()
    return nl


def half_relay_station_netlist(
    width: int = 8,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    name: str = "half_relay_station",
) -> Netlist:
    """Structural half relay station (1 register, transparent stop)."""
    nl = Netlist(name)
    in_data = nl.add_input("in_data", width)
    in_valid = nl.add_input("in_valid")
    stop_in = nl.add_input("stop_in")
    out_data = nl.add_output("out_data", width)
    out_valid = nl.add_output("out_valid")
    stop_out = nl.add_output("stop_out")

    main_v = nl.net("main_valid")
    main_d = nl.net("main_data", width)

    blocked = nl.g_and(main_v, stop_in, "blocked")
    if variant is ProtocolVariant.CASU:
        # Stops landing on a void register are discarded.
        nl.cell("BUF", "u_stop", a=blocked, y=stop_out)
    else:
        # Original protocol: the stop passes through regardless.
        nl.cell("BUF", "u_stop", a=stop_in, y=stop_out)

    free = nl.g_not(blocked, "free")
    n_stop_out = nl.g_not(stop_out, "n_stop_out")
    acc = nl.g_and(in_valid, n_stop_out, "acc")
    load = nl.g_and(free, acc, "load")

    kept = nl.g_and(nl.g_not(free, "hold"), main_v, "kept")
    main_v_next = nl.g_or(load, kept, "main_valid_next")
    main_d_next = nl.g_mux(main_d, in_data, load, "main_data_next", width)

    nl.g_reg("main_valid_next", main_v, init=0)
    nl.g_reg("main_data_next", main_d, width=width)

    nl.cell("BUF", "u_outd", a=main_d, y=out_data, width=width)
    nl.cell("BUF", "u_outv", a=main_v, y=out_valid)
    nl.validate()
    return nl

"""Spec-level verification and conformance for the queued shell."""

import random

import pytest

from repro.kernel.scheduler import Simulator
from repro.lid.channel import Channel
from repro.lid.queued_shell import QueuedShell
from repro.lid.token import Token
from repro.lid.variant import ProtocolVariant
from repro.pearls import Identity
from repro.verify import fsm, verify_queued_shell
from repro.verify.env import PAYLOAD_MODULUS

from .test_conformance import ScriptedDownstream, ScriptedUpstream, random_scripts


class TestSpecFsm:
    def test_initial_fire_blocked_on_empty_queue(self):
        state = fsm.QueuedShellState(queue=(), out=(None,))
        assert not fsm.queued_shell_fire(state, (False,))

    def test_fire_pops_and_replicates(self):
        state = fsm.QueuedShellState(queue=(3, 4), out=(None, None))
        nxt = fsm.queued_shell_step(state, None, (False, False))
        assert nxt.queue == (4,)
        assert nxt.out == (3, 3)

    def test_stop_reg_tracks_fullness(self):
        # A valid, stopped output blocks firing (a stop on a void
        # output would be discarded under the refined protocol).
        state = fsm.QueuedShellState(queue=(1,), out=(7,), depth=2)
        nxt = fsm.queued_shell_step(state, 2, (True,))
        assert nxt.queue == (1, 2)
        assert nxt.stop_reg  # full now

    def test_registered_stop_blocks_acceptance(self):
        state = fsm.QueuedShellState(queue=(1, 2), out=(7,),
                                     stop_reg=True, depth=2)
        nxt = fsm.queued_shell_step(state, 9, (True,))
        assert nxt.queue == (1, 2)  # 9 held by the upstream

    def test_held_output_survives(self):
        state = fsm.QueuedShellState(queue=(), out=(7,))
        nxt = fsm.queued_shell_step(state, None, (True,))
        assert nxt.out == (7,)
        nxt = fsm.queued_shell_step(nxt, None, (False,))
        assert nxt.out == (None,)


class TestProperties:
    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_all_properties_hold(self, depth):
        for row in verify_queued_shell(depth=depth):
            assert row.holds, row.counterexample and \
                row.counterexample.render()

    def test_fanout_variant(self):
        for row in verify_queued_shell(n_outputs=2):
            assert row.holds

    def test_carloni_variant(self):
        for row in verify_queued_shell(
                variant=ProtocolVariant.CARLONI):
            assert row.holds


class TestConformance:
    """The spec FSM and the simulation QueuedShell agree in lockstep."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("depth", [1, 2])
    def test_lockstep(self, seed, depth):
        offers, stops = random_scripts(seed + 500, length=300)
        sim = Simulator()
        chan_in = Channel.create(sim, "in")
        chan_out = Channel.create(sim, "out")
        shell = QueuedShell("q", Identity(initial=PAYLOAD_MODULUS - 1),
                            queue_depth=depth)
        shell.connect_input("a", chan_in)
        shell.connect_output("out", chan_out)
        up = ScriptedUpstream("up", chan_in, offers)
        down = ScriptedDownstream("down", chan_out, stops)
        sim.add_component(up)
        sim.add_component(shell)
        sim.add_component(down)
        sim.reset()

        spec = fsm.QueuedShellState(
            queue=(), out=(PAYLOAD_MODULUS - 1,), depth=depth)
        for cycle in range(len(offers)):
            sim._settle()
            # Moore outputs must agree before the edge.
            assert chan_out.valid.value == (spec.out[0] is not None), \
                cycle
            if spec.out[0] is not None:
                assert chan_out.data.value % PAYLOAD_MODULUS == \
                    spec.out[0] % PAYLOAD_MODULUS, cycle
            assert chan_in.stop.value == spec.stop_reg, cycle
            in_tok = chan_in.read()
            stop_in = chan_out.stop_asserted()
            spec = fsm.queued_shell_step(
                spec,
                in_tok.value if in_tok.valid else None,
                (stop_in,),
                modulus=1 << 30,
            )
            for comp in sim.components:
                comp.tick()
            sim.cycle += 1

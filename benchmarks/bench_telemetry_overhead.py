"""EXP-O1: telemetry overhead on the skeleton hot loop.

Two contracts guard the instrumentation added for observability:

* with telemetry **disabled** the skeleton stepping loop must be
  essentially unchanged (the guard is one cached-boolean branch); the
  tier-1 budget allows at most a few percent;
* with telemetry **enabled** (metrics + events) the same loop must stay
  within 2x of the disabled baseline — CI reads the emitted
  ``BENCH_EXP-O1-telemetry-overhead.json`` and fails (non-blocking) if
  the ratio exceeds that bound.
"""

from time import perf_counter

import pytest

from repro.bench.tables import format_table
from repro.graph import pipeline
from repro.obs import Telemetry
from repro.skeleton import SkeletonSim

CYCLES = 400
STAGES = 12


def _run(telemetry, cycles=CYCLES):
    graph = pipeline(STAGES, relays_per_hop=2)
    sim = SkeletonSim(graph, detect_ambiguity=False, telemetry=telemetry)
    started = perf_counter()
    for _ in range(cycles):
        sim.step()
    return perf_counter() - started


def test_bench_telemetry_overhead(benchmark, emit):
    disabled = min(_run(None) for _ in range(3))
    enabled = min(_run(Telemetry.full()) for _ in range(3))
    ratio = enabled / disabled if disabled else float("inf")
    benchmark.pedantic(_run, args=(None,), rounds=1, iterations=1)
    rows = [
        ("disabled", f"{disabled * 1e3:.2f} ms", "1.00x"),
        ("enabled (events+metrics)", f"{enabled * 1e3:.2f} ms",
         f"{ratio:.2f}x"),
    ]
    table = format_table(
        ("telemetry", f"wall ({CYCLES} cycles)", "vs disabled"),
        rows,
        title=f"Telemetry overhead on pipeline({STAGES}) skeleton "
              f"stepping (bound: enabled <= 2x disabled)",
    )
    emit("EXP-O1-telemetry-overhead", table, rows=rows,
         wall_seconds=disabled + enabled,
         params={"cycles": CYCLES, "stages": STAGES},
         counters={"disabled_seconds": disabled,
                   "enabled_seconds": enabled,
                   "overhead_ratio": ratio})


@pytest.mark.parametrize("mode", ["off", "metrics", "full"])
def test_bench_stepping_by_mode(benchmark, mode):
    """Raw stepping rate per telemetry mode, for the benchmark table."""
    telemetry = {"off": None,
                 "metrics": Telemetry.metrics_only(),
                 "full": Telemetry.full()}[mode]
    graph = pipeline(STAGES, relays_per_hop=2)
    sim = SkeletonSim(graph, detect_ambiguity=False, telemetry=telemetry)

    def run():
        for _ in range(100):
            sim.step()

    benchmark(run)

"""Tests for the skeleton simulator."""

from fractions import Fraction

import pytest

from repro.graph import figure1, figure2, pipeline, reconvergent, ring, tree
from repro.lid.variant import ProtocolVariant
from repro.skeleton import SkeletonSim


class TestBasics:
    def test_pipeline_full_rate(self):
        sim = SkeletonSim(pipeline(3))
        result = sim.run()
        assert result.min_shell_throughput() == 1

    def test_figure1_rate(self):
        result = SkeletonSim(figure1()).run()
        assert result.throughput("out") == Fraction(4, 5)
        assert result.period == 5

    def test_figure1_transient(self):
        result = SkeletonSim(figure1()).run()
        assert result.transient == 2

    def test_figure2_rate(self):
        result = SkeletonSim(figure2()).run()
        assert result.min_shell_throughput() == Fraction(1, 2)

    def test_throughput_unknown_name(self):
        result = SkeletonSim(pipeline(2)).run()
        with pytest.raises(KeyError):
            result.throughput("nope")

    def test_all_shell_rates_reported(self):
        result = SkeletonSim(figure1()).run()
        assert set(result.shell_fires) == {"A", "B0", "C"}

    def test_fixpoint_argument_validated(self):
        with pytest.raises(ValueError):
            SkeletonSim(pipeline(2), fixpoint="median")


class TestAgainstFullSimulation:
    """Skeleton and full simulation must produce identical rates."""

    @pytest.mark.parametrize("builder,kwargs", [
        (figure1, {}),
        (figure2, {}),
        (ring, {"shells": 3, "relays_per_arc": 2}),
        (reconvergent, {"long_relays": (2, 1), "short_relays": 1}),
        (tree, {"depth": 2}),
    ])
    def test_rates_match(self, builder, kwargs):
        graph = builder(**kwargs)
        result = SkeletonSim(graph).run()
        period = result.period
        cycles = result.transient + 10 * period
        system = graph.elaborate()
        system.run(cycles)
        for name, sink in system.sinks.items():
            accepted = sum(
                1 for c, _v in sink.received
                if result.transient <= c < result.transient + 5 * period
            )
            assert Fraction(accepted, 5 * period) == \
                result.throughput(name)


class TestScripts:
    def test_source_pattern_throttles(self):
        sim = SkeletonSim(pipeline(2),
                          source_patterns={"src": (True, False)})
        result = sim.run()
        assert result.throughput("out") == Fraction(1, 2)

    def test_sink_pattern_throttles(self):
        sim = SkeletonSim(pipeline(2),
                          sink_patterns={"out": (False, False, True)})
        result = sim.run()
        assert result.throughput("out") == Fraction(2, 3)

    def test_combined_patterns(self):
        sim = SkeletonSim(
            pipeline(2),
            source_patterns={"src": (True, True, False)},
            sink_patterns={"out": (False, True)},
        )
        result = sim.run()
        assert result.throughput("out") == min(
            Fraction(2, 3), Fraction(1, 2))


class TestVariants:
    def test_carloni_pipeline_still_full_rate(self):
        sim = SkeletonSim(pipeline(3), variant=ProtocolVariant.CARLONI)
        assert sim.run().min_shell_throughput() == 1

    def test_variants_agree_on_steady_figure1(self):
        casu = SkeletonSim(figure1(), variant=ProtocolVariant.CASU).run()
        carloni = SkeletonSim(figure1(),
                              variant=ProtocolVariant.CARLONI).run()
        assert casu.throughput("out") == carloni.throughput("out")


class TestStateHashing:
    def test_state_is_hashable_and_stable(self):
        sim = SkeletonSim(figure1())
        first = sim.state()
        assert hash(first) == hash(sim.state())
        sim.step()
        assert sim.state() != first

    def test_reset_restores_initial_state(self):
        sim = SkeletonSim(figure1())
        initial = sim.state()
        sim.step()
        sim.reset()
        assert sim.state() == initial

    def test_run_timeout(self):
        sim = SkeletonSim(pipeline(3))
        with pytest.raises(TimeoutError):
            sim.run(max_cycles=1)

"""Parametric builders for the paper's representative topologies.

The paper's performance theory is organized around four graph classes —
trees, reconvergent feed-forward graphs, feedback loops, and
feed-forward combinations of self-interacting loops.  Each builder here
returns a :class:`~repro.graph.model.SystemGraph` ready to elaborate,
analyze or skeleton-simulate, plus canonical instances of the paper's
Figure 1 and Figure 2 systems.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from ..errors import StructuralError
from ..pearls.arithmetic import Adder, Identity
from .model import BridgeSpec, RelaySpec, SystemGraph, as_rate


def _fulls(n: int) -> tuple:
    return ("full",) * n


def pipeline(
    stages: int,
    relays_per_hop: int = 1,
    pearl_factory: Callable = Identity,
) -> SystemGraph:
    """A linear chain: source -> S0 -> ... -> S(n-1) -> sink."""
    if stages < 1:
        raise StructuralError("pipeline needs at least one stage")
    g = SystemGraph(f"pipeline{stages}x{relays_per_hop}")
    g.add_source("src")
    for i in range(stages):
        g.add_shell(f"S{i}", pearl_factory)
    g.add_sink("out")
    g.add_edge("src", "S0")
    for i in range(stages - 1):
        g.add_edge(f"S{i}", f"S{i+1}", relays=relays_per_hop)
    g.add_edge(f"S{stages-1}", "out")
    return g


def tree(
    depth: int,
    branching: int = 2,
    relays_per_hop: int = 1,
) -> SystemGraph:
    """A reduction tree of adders fed by one source per leaf.

    Throughput 1 with an initial transient bounded by the longest
    source-to-sink path (paper's tree claim, EXP-T1).  ``depth`` is the
    number of adder levels; level 0 is the root feeding the sink.
    """
    if depth < 1:
        raise StructuralError("tree needs depth >= 1")
    if branching != 2:
        raise StructuralError("binary trees only (adders are 2-input)")
    g = SystemGraph(f"tree_d{depth}")
    g.add_sink("out")

    def build(level: int, index: int) -> str:
        name = f"n{level}_{index}"
        g.add_shell(name, Adder)
        for child, port in ((2 * index, "a"), (2 * index + 1, "b")):
            if level + 1 < depth:
                child_name = build(level + 1, child)
                g.add_edge(child_name, name, relays=relays_per_hop,
                           dst_port=port)
            else:
                leaf = f"src{child}"
                g.add_source(leaf)
                g.add_edge(leaf, name, relays=relays_per_hop, dst_port=port)
        return name

    root = build(0, 0)
    g.add_edge(root, "out")
    return g


def reconvergent(
    long_relays: Sequence[int] = (1, 1),
    short_relays: int = 1,
    pearl_factory: Callable = Identity,
    join_factory: Callable = Adder,
) -> SystemGraph:
    """The paper's "reconvergent inputs" topology.

    ``src -> A``, then two branches from ``A`` to the join shell ``C``:

    * the **long** branch passes through ``len(long_relays) - 1``
      intermediate shells, with ``long_relays[k]`` full relay stations
      on its k-th hop;
    * the **short** branch goes straight to ``C`` with *short_relays*
      full relay stations.

    The relay imbalance ``i = sum(long_relays) - short_relays`` forces
    the long branch to inject voids, and the implicit loop closed by the
    short branch's back pressure limits throughput to ``(m - i)/m``
    (paper formula; EXP-T2).  The default arguments build exactly the
    Figure 1 instance: m = 5, i = 1, T = 4/5.
    """
    if len(long_relays) < 1:
        raise StructuralError("long branch needs at least one hop")
    g = SystemGraph("reconvergent")
    g.add_source("src")
    g.add_shell("A", pearl_factory)
    g.add_shell("C", join_factory)
    g.add_sink("out")
    g.add_edge("src", "A")

    # Long branch: A -> B0 -> B1 -> ... -> C.
    prev = "A"
    for k, relays in enumerate(long_relays[:-1]):
        name = f"B{k}"
        g.add_shell(name, pearl_factory)
        g.add_edge(prev, name, relays=relays)
        prev = name
    g.add_edge(prev, "C", relays=long_relays[-1], dst_port="a")

    # Short branch: A -> C.
    g.add_edge("A", "C", relays=short_relays, dst_port="b")
    g.add_edge("C", "out")
    return g


def figure1() -> SystemGraph:
    """The exact system of the paper's Figure 1.

    Three shells A, B, C; the long branch A->B->C carries one relay
    station per hop, the short branch A->C carries one.  Imbalance
    i = 1; m = (relay stations in the implicit loop) + (shells whose
    output registers lie on the long path) = 3 + 2 = 5; the output
    utters one invalid datum every 5 cycles and T = 4/5.
    """
    g = reconvergent(long_relays=(1, 1), short_relays=1)
    g.name = "figure1"
    return g


def ring(
    shells: int = 2,
    relays_per_arc: Iterable[RelaySpec] | int = 1,
    pearl_factory: Optional[Callable] = None,
    tap_sink: bool = True,
) -> SystemGraph:
    """A feedback loop of *shells* shells (paper's Figure 2 topology).

    *relays_per_arc* is either an int (full relay stations per arc) or a
    list with one relay-spec sequence per arc.  Maximum throughput is
    S/(S+R) where R counts all relay stations on the loop (EXP-T4).
    """
    if shells < 1:
        raise StructuralError("ring needs at least one shell")
    if pearl_factory is None:
        pearl_factory = Identity
    g = SystemGraph(f"ring{shells}")
    names = [f"S{i}" for i in range(shells)]
    for name in names:
        g.add_shell(name, pearl_factory)
    if isinstance(relays_per_arc, int):
        arcs: List[tuple] = [_fulls(relays_per_arc)] * shells
    else:
        arcs = [
            _fulls(a) if isinstance(a, int) else tuple(a)
            for a in relays_per_arc
        ]
        if len(arcs) != shells:
            raise StructuralError(
                f"need {shells} arc specs, got {len(arcs)}"
            )
    for i, name in enumerate(names):
        g.add_edge(name, names[(i + 1) % shells], relays=arcs[i])
    if tap_sink:
        g.add_sink("out")
        g.add_edge(names[0], "out")
    return g


def figure2(relays_per_arc: int = 1) -> SystemGraph:
    """The paper's Figure 2: a two-shell feedback loop (A and B).

    With one relay station per arc, S = 2 and R = 2: at most S valid
    data circulate among S + R positions, so T = S/(S+R) = 1/2.
    """
    g = ring(shells=2, relays_per_arc=relays_per_arc)
    g.name = "figure2"
    return g


def self_loop(relays: int = 1, pearl_factory: Callable = None) -> SystemGraph:
    """A single shell feeding itself (S = 1): T = 1/(1+R)."""
    from ..pearls.state import Fibonacci

    g = SystemGraph(f"selfloop_r{relays}")
    factory = pearl_factory or (lambda: Fibonacci())
    g.add_shell("A", factory)
    g.add_source("src")
    g.add_sink("out")
    g.add_edge("A", "A", relays=relays, src_port="out", dst_port="loop_in")
    g.add_edge("src", "A", dst_port="ext")
    g.add_edge("A", "out", src_port="out")
    return g


def loop_with_tail(
    loop_shells: int = 2,
    loop_relays: int = 2,
    tail_shells: int = 2,
    tail_relays: int = 1,
) -> SystemGraph:
    """A feedback loop whose output feeds a feed-forward tail.

    The paper's "most general topology": a feed-forward combination of
    self-interacting loops.  The loop is the slowest sub-topology and
    drags the tail down to S/(S+R) — without any path equalization
    (EXP-T5).
    """
    g = ring(shells=loop_shells, relays_per_arc=1, tap_sink=False)
    g.name = f"loop{loop_shells}_tail{tail_shells}"
    extra = loop_relays - loop_shells
    if extra < 0:
        raise StructuralError("loop_relays must be >= loop_shells (lint rule)")
    if extra:
        # Pile the surplus relay stations on the closing arc.
        for edge in g.edges:
            if edge.dst == "S0":
                edge.relays = edge.relays + _fulls(extra)
                break
    prev = "S0"
    for i in range(tail_shells):
        name = f"T{i}"
        g.add_shell(name, Identity)
        g.add_edge(prev, name, relays=tail_relays)
        prev = name
    g.add_sink("out")
    g.add_edge(prev, "out")
    return g


def butterfly_network(
    lanes: int = 8,
    relays_per_hop: int = 1,
) -> SystemGraph:
    """A radix-2 butterfly (Walsh–Hadamard) network over *lanes* lanes.

    ``log2(lanes)`` stages of :class:`~repro.pearls.dsp.Butterfly`
    shells; stage s pairs lanes differing in bit s, the ``sum`` output
    staying on the low lane.  Each lane has its own source (``in<k>``)
    and sink (``out<k>``).  Every reconvergent path carries the same
    relay count, so the network runs at throughput 1 — the densest
    balanced-reconvergence stress test in the suite.
    """
    from ..pearls.dsp import Butterfly

    if lanes < 2 or lanes & (lanes - 1):
        raise StructuralError("lanes must be a power of two >= 2")
    stages = lanes.bit_length() - 1
    g = SystemGraph(f"butterfly{lanes}")
    for lane in range(lanes):
        g.add_source(f"in{lane}")
        g.add_sink(f"out{lane}")

    lane_driver = {lane: (f"in{lane}", None) for lane in range(lanes)}
    for stage in range(stages):
        bit = 1 << stage
        for lane in range(lanes):
            if lane & bit:
                continue
            partner = lane | bit
            name = f"bf{stage}_{lane}"
            g.add_shell(name, Butterfly)
            for port, src_lane in (("a", lane), ("b", partner)):
                src, src_port = lane_driver[src_lane]
                g.add_edge(src, name, relays=relays_per_hop,
                           src_port=src_port, dst_port=port)
            lane_driver[lane] = (name, "sum")
            lane_driver[partner] = (name, "diff")
    for lane in range(lanes):
        src, src_port = lane_driver[lane]
        g.add_edge(src, f"out{lane}", src_port=src_port)
    return g


def composed(
    reconv_imbalance: int = 1,
    loop_relays: int = 2,
) -> SystemGraph:
    """Reconvergence feeding a feedback loop feeding a sink.

    Used by the composition bench: the system settles at the minimum of
    the two sub-topology throughputs.
    """
    g = SystemGraph("composed")
    g.add_source("src")
    g.add_shell("A", Identity)
    g.add_shell("B", Identity)
    g.add_shell("C", Adder)
    g.add_sink("out")
    g.add_edge("src", "A")
    g.add_edge("A", "B", relays=1 + reconv_imbalance)
    g.add_edge("B", "C", relays=1, dst_port="a")
    g.add_edge("A", "C", relays=1, dst_port="b")
    # Loop stage: C feeds an accumulating loop shell L with self arc.
    from ..pearls.state import Fibonacci

    g.add_shell("L", lambda: Fibonacci())
    g.add_edge("C", "L", relays=1, dst_port="ext")
    g.add_edge("L", "L", relays=loop_relays, src_port="out",
               dst_port="loop_in")
    g.add_edge("L", "out", src_port="out")
    return g


def _gals_domains(g: SystemGraph, rates: Sequence) -> List[str]:
    """Register one domain per rate, named ``D0..Dk``, and return names."""
    if len(rates) < 2:
        raise StructuralError("gals topologies need at least two domains")
    names = []
    for k, rate in enumerate(rates):
        name = f"D{k}"
        g.add_domain(name, as_rate(rate, where=f"domain {name}"))
        names.append(name)
    return names


def gals_chain(
    rates: Sequence = ("1", "1/2"),
    stages_per_domain: int = 1,
    depth: int = 2,
    relays_per_hop: int = 0,
    pearl_factory: Callable = Identity,
) -> SystemGraph:
    """A pipeline crossing one clock domain per entry of *rates*.

    ``src`` and the first shells run in domain ``D0``; each subsequent
    domain is entered through a bisynchronous FIFO bridge of capacity
    *depth*; the sink lives in the last domain.  Feed-forward, so the
    mixed-rate throughput formula predicts ``min(rates)``.
    """
    if stages_per_domain < 1:
        raise StructuralError("gals_chain needs stages_per_domain >= 1")
    g = SystemGraph(f"gals_chain{len(rates)}x{stages_per_domain}")
    domains = _gals_domains(g, rates)
    g.add_source("src", domain=domains[0])
    prev, prev_k = "src", 0
    for k, domain in enumerate(domains):
        for i in range(stages_per_domain):
            name = f"S{k}_{i}"
            g.add_shell(name, pearl_factory, domain=domain)
            if prev_k != k:
                g.add_edge(prev, name, relays=relays_per_hop,
                           bridge=BridgeSpec(depth=depth))
            else:
                g.add_edge(prev, name, relays=relays_per_hop)
            prev, prev_k = name, k
    g.add_sink("out", domain=domains[-1])
    g.add_edge(prev, "out")
    return g


def gals_ring(
    rates: Sequence = ("1", "1/2"),
    shells_per_domain: int = 1,
    depth: int = 2,
    relays_per_arc: int = 0,
    pearl_factory: Callable = Identity,
    tap_sink: bool = True,
) -> SystemGraph:
    """A feedback loop whose arcs cross clock domains through bridges.

    One group of *shells_per_domain* shells per rate; consecutive
    groups are joined by bisynchronous FIFO bridges of capacity
    *depth*, and the loop closes back into ``D0`` through a final
    bridge.  The domain-crossing analogue of :func:`ring`/``figure2``.
    """
    if shells_per_domain < 1:
        raise StructuralError("gals_ring needs shells_per_domain >= 1")
    g = SystemGraph(f"gals_ring{len(rates)}x{shells_per_domain}")
    domains = _gals_domains(g, rates)
    members: List[tuple] = []
    for k, domain in enumerate(domains):
        for i in range(shells_per_domain):
            name = f"S{k}_{i}"
            g.add_shell(name, pearl_factory, domain=domain)
            members.append((name, k))
    for idx, (name, k) in enumerate(members):
        nxt, nxt_k = members[(idx + 1) % len(members)]
        if nxt_k != k:
            g.add_edge(name, nxt, relays=relays_per_arc,
                       bridge=BridgeSpec(depth=depth))
        else:
            g.add_edge(name, nxt, relays=relays_per_arc)
    if tap_sink:
        g.add_sink("out", domain=domains[0])
        g.add_edge(members[0][0], "out")
    return g

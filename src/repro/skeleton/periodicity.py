"""Transient/period extraction.

The paper: *"after a number of clock cycles that are dependent on the
system each part of it behaves in a periodic fashion"* — and the
transient length *"is related to the number of relay stations and
shells, and can be predicted upfront"*.

These helpers find the exact (transient, period) pair of any
deterministic finite-state process by state hashing, and provide the
static upper bound used to decide how long the paper's
simulate-until-transient-extinction deadlock check must run.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Tuple

from ..graph.model import SystemGraph
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant


def detect_period(
    step: Callable[[], None],
    state: Callable[[], Hashable],
    max_cycles: int = 100_000,
) -> Tuple[int, int]:
    """Drive *step* until *state()* repeats; return ``(transient, period)``.

    ``transient`` is the cycle at which the recurring state was first
    seen; ``period`` is the recurrence interval.  Works for any
    deterministic system whose state is hashable and finite.
    """
    seen: Dict[Hashable, int] = {state(): 0}
    for cycle in range(1, max_cycles + 1):
        step()
        snapshot = state()
        if snapshot in seen:
            first = seen[snapshot]
            return first, cycle - first
        seen[snapshot] = cycle
    raise TimeoutError(f"no periodicity within {max_cycles} cycles")


def transient_and_period(
    graph: SystemGraph,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    max_cycles: int = 100_000,
    **skeleton_kwargs,
) -> Tuple[int, int]:
    """(transient, period) of a system graph via skeleton simulation."""
    from .sim import SkeletonSim

    sim = SkeletonSim(graph, variant=variant, **skeleton_kwargs)
    result = sim.run(max_cycles=max_cycles)
    return result.transient, result.period


def transient_estimate(graph: SystemGraph) -> int:
    """Tight practical estimate of the transient length.

    Two regimes, both linear in the storage counts the paper names:

    * **trees / pipelines** (no reconvergence, no loops) — the
      transient is the drain time of the voids initially stored along
      the deepest source-to-sink path, bounded by the longest register
      path;
    * **reconvergent or loopy systems** — back-pressure waves bounce
      between the unbalanced branches / around the loops before the
      periodic pattern locks in, bounded by twice the total storage
      (shell registers + both relay-station slots) plus two.

    The estimate dominates every measured transient in the test suite's
    deterministic sweeps (fixed random seeds included); the quadratic
    :func:`transient_bound` remains the conservative guarantee.
    """
    from ..analysis.throughput import reconvergence_pairs
    from ..analysis.transient import longest_register_path
    from ..errors import AnalysisError

    try:
        if not reconvergence_pairs(graph):
            # +1: periodicity is detected one cycle after the last
            # bubble drains (the state-hash match trails the data).
            return longest_register_path(graph) + 1
    except AnalysisError:
        pass
    shells = len(graph.shells())
    slots = sum(
        2 if spec == "full" else 1
        for edge in graph.edges for spec in edge.relays
    )
    return 2 * (shells + slots) + 2


def transient_bound(graph: SystemGraph) -> int:
    """Static upper-bound estimate of the transient length.

    The transient is driven by (a) the voids initially stored in relay
    stations draining toward the outputs and (b) stop waves reflecting
    around loops until the steady pattern locks in.  Both are bounded by
    a small multiple of the total storage in the system; we use

        bound = (R_total + S_total + 2) * (longest_simple_path_factor)

    with the conservative factor ``R_total + S_total + 2`` — i.e. the
    square of the storage count — which the transient bench (EXP-D3)
    shows to dominate every measured transient comfortably while staying
    "predictable upfront" in the paper's sense.
    """
    shells = len(graph.shells())
    relays = graph.relay_count()
    storage = shells + relays + 2
    return storage * storage

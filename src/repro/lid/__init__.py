"""Core latency-insensitive protocol implementation (the paper's contribution).

Public surface:

* :class:`Token` / :data:`VOID` — the data-validation layer;
* :class:`ProtocolVariant` — Carloni's original protocol vs. the paper's
  stop-on-void-discarding refinement;
* :class:`Channel` — data/valid/stop wire bundles;
* :class:`Shell` — the pearl wrapper (validation, back pressure, gating);
* :class:`RelayStation` / :class:`HalfRelayStation` — full (2-register,
  registered stop) and half (1-register, transparent stop) repeaters;
* :class:`Source` / :class:`Sink` — primary I/O with scripted streams
  and back-pressure;
* :class:`LidSystem` — construction, lint, simulation, metrics and the
  zero-latency reference model for latency-equivalence checks.
"""

from .channel import Channel
from .endpoints import Sink, Source, counting_stream, scripted_stream
from .lint import check_combinational_stop_cycles, check_shell_to_shell, lint_system
from .monitor import ChannelMonitor, StreamMonitor, watch_system
from .queued_shell import QueuedShell
from .reference import POISON, is_prefix, run_reference
from .relay import HalfRelayStation, RelayStation
from .shell import Shell
from .system import LidSystem
from .token import Token, VOID, payloads, valid_stream
from .variant import DEFAULT_VARIANT, ProtocolVariant

__all__ = [
    "Channel",
    "ChannelMonitor",
    "DEFAULT_VARIANT",
    "HalfRelayStation",
    "LidSystem",
    "POISON",
    "ProtocolVariant",
    "QueuedShell",
    "RelayStation",
    "Shell",
    "Sink",
    "Source",
    "StreamMonitor",
    "Token",
    "VOID",
    "check_combinational_stop_cycles",
    "check_shell_to_shell",
    "counting_stream",
    "is_prefix",
    "lint_system",
    "payloads",
    "run_reference",
    "scripted_stream",
    "valid_stream",
    "watch_system",
]

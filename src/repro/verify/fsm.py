"""Pure-functional spec FSMs of the protocol blocks.

The paper verified its blocks by describing them *"at the RT level"* in
SMV.  We do the same in Python: each block gets a side-effect-free
transition function over immutable states, small enough for exhaustive
exploration.  These specs deliberately duplicate the semantics of
:mod:`repro.lid` — the conformance tests in
``tests/verify/test_conformance.py`` replay random traces through both
the spec and the real simulation components and require lockstep
agreement, so the model checked here is the model that runs.

Payloads are abstracted to small rotating sequence numbers
(data independence: no block inspects a payload), which keeps the state
space finite while still exposing skipped, duplicated or reordered
tokens.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant

#: Abstract payload type: a small int or None for void.
Payload = Optional[int]


@dataclasses.dataclass(frozen=True)
class FullRsState:
    """Registers of a full relay station: main, aux, registered stop."""

    main: Payload = None
    aux: Payload = None
    stop_reg: bool = False

    @property
    def occupancy(self) -> int:
        return (self.main is not None) + (self.aux is not None)


def full_rs_outputs(state: FullRsState) -> Tuple[Payload, bool]:
    """Moore outputs: (token presented, stop to upstream)."""
    return state.main, state.stop_reg


def full_rs_step(
    state: FullRsState,
    in_tok: Payload,
    stop_in: bool,
    variant: ProtocolVariant = DEFAULT_VARIANT,
) -> FullRsState:
    """One clock edge of the full relay station."""
    accepted = in_tok is not None and not state.stop_reg
    consumed = variant.slot_consumed(state.main is not None, stop_in)
    if state.aux is not None:
        if consumed:
            return FullRsState(main=state.aux, aux=None, stop_reg=False)
        return state
    if consumed:
        return FullRsState(
            main=in_tok if accepted else None, aux=None, stop_reg=False
        )
    if accepted:
        return FullRsState(main=state.main, aux=in_tok, stop_reg=True)
    return dataclasses.replace(state, stop_reg=False)


@dataclasses.dataclass(frozen=True)
class HalfRsState:
    """The single register of a half relay station."""

    main: Payload = None


def half_rs_stop_out(
    state: HalfRsState,
    stop_in: bool,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    registered_stop: bool = False,
) -> bool:
    """Stop presented to the upstream (Mealy unless *registered_stop*)."""
    if registered_stop:
        return state.main is not None
    if variant is ProtocolVariant.CASU:
        return stop_in and state.main is not None
    return stop_in


def half_rs_step(
    state: HalfRsState,
    in_tok: Payload,
    stop_in: bool,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    registered_stop: bool = False,
) -> HalfRsState:
    """One clock edge of the half relay station."""
    stop_out = half_rs_stop_out(state, stop_in, variant, registered_stop)
    consumed = variant.slot_consumed(state.main is not None, stop_in)
    accepted = in_tok is not None and not stop_out
    if consumed:
        return HalfRsState(main=in_tok if accepted else None)
    return state


@dataclasses.dataclass(frozen=True)
class QueuedShellState:
    """Spec state of a queued shell (single input, data independent).

    ``queue`` holds enqueued payloads oldest-first; ``stop_reg`` is the
    registered back pressure published to the upstream; ``out`` is the
    per-channel output register tuple, as for the plain shell.
    """

    queue: Tuple[Payload, ...]
    out: Tuple[Payload, ...]
    stop_reg: bool = False
    depth: int = 2


def queued_shell_fire(state: QueuedShellState,
                      out_stops: Tuple[bool, ...],
                      variant: ProtocolVariant = DEFAULT_VARIANT) -> bool:
    if not state.queue:
        return False
    for reg, stop in zip(state.out, out_stops):
        if variant.output_blocked(stop, reg is not None):
            return False
    return True


def queued_shell_step(
    state: QueuedShellState,
    in_tok: Payload,
    out_stops: Tuple[bool, ...],
    variant: ProtocolVariant = DEFAULT_VARIANT,
    modulus: int = 8,
) -> QueuedShellState:
    """One clock edge of the (single-input) queued shell."""
    queue = state.queue
    if queued_shell_fire(state, out_stops, variant):
        head, queue = queue[0], queue[1:]
        produced = head % modulus
        out = tuple(produced for _ in state.out)
    else:
        out = tuple(
            reg if (reg is not None and stop) else None
            for reg, stop in zip(state.out, out_stops)
        )
    accepted = in_tok is not None and not state.stop_reg
    if accepted:
        queue = queue + (in_tok,)
    return QueuedShellState(
        queue=queue,
        out=out,
        stop_reg=len(queue) >= state.depth,
        depth=state.depth,
    )


@dataclasses.dataclass(frozen=True)
class ShellState:
    """Shell spec state: pearl counter plus per-output registers.

    The spec pearl is data-independent: it consumes one token per input
    and emits ``combine(inputs)`` — by default the first input payload —
    so coherence, ordering and no-skip are all observable.  ``out``
    holds one register per output channel (fan-out replicas).
    """

    out: Tuple[Payload, ...]
    fired: int = 0


def shell_outputs(state: ShellState) -> Tuple[Payload, ...]:
    return state.out


def shell_fire(
    state: ShellState,
    in_toks: Tuple[Payload, ...],
    out_stops: Tuple[bool, ...],
    variant: ProtocolVariant = DEFAULT_VARIANT,
) -> bool:
    """Combinational firing condition."""
    if any(tok is None for tok in in_toks):
        return False
    for reg, stop in zip(state.out, out_stops):
        if variant.output_blocked(stop, reg is not None):
            return False
    return True


def shell_input_stops(
    state: ShellState,
    in_toks: Tuple[Payload, ...],
    out_stops: Tuple[bool, ...],
    variant: ProtocolVariant = DEFAULT_VARIANT,
) -> Tuple[bool, ...]:
    """Back pressure the shell asserts on each input (Mealy)."""
    stalled = not shell_fire(state, in_toks, out_stops, variant)
    return tuple(
        variant.back_pressure(stalled, tok is not None) for tok in in_toks
    )


def shell_step(
    state: ShellState,
    in_toks: Tuple[Payload, ...],
    out_stops: Tuple[bool, ...],
    variant: ProtocolVariant = DEFAULT_VARIANT,
    modulus: int = 8,
) -> ShellState:
    """One clock edge of the shell around the data-independent pearl."""
    if shell_fire(state, in_toks, out_stops, variant):
        produced = in_toks[0] % modulus if in_toks[0] is not None else None
        return ShellState(
            out=tuple(produced for _ in state.out), fired=state.fired + 1
        )
    new_out = []
    for reg, stop in zip(state.out, out_stops):
        held = reg is not None and stop
        new_out.append(reg if held else None)
    return ShellState(out=tuple(new_out), fired=state.fired)

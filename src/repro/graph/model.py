"""Abstract system graphs: simulator-independent topology descriptions.

The paper reasons about LID systems as *"a direct, possibly cyclic graph
associated to a system of interconnected synchronous processes"*.  A
:class:`SystemGraph` captures exactly that: shells (with pearl
factories), sources, sinks, and edges annotated with relay-station
chains.  The same graph object feeds

* :meth:`SystemGraph.elaborate` — builds a live
  :class:`~repro.lid.system.LidSystem` for full simulation;
* :mod:`repro.skeleton` — the valid/stop-only fast simulator;
* :mod:`repro.analysis` — the closed-form and minimum-cycle-ratio
  throughput analyses;
* :mod:`repro.graph.transform` — path equalization and deadlock cures.

Pearls are stored as zero-argument *factories* so a graph can be
elaborated many times (different variants, before/after transforms)
with fresh pearl state each time.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import networkx as nx

from ..errors import StructuralError

#: Relay chain entry: "full", "half", or "half-registered".
RelaySpec = str

#: Every node lives in a clock domain; this is the implicit default
#: (rate 1/1), which keeps pre-GALS graphs — and their fingerprints —
#: byte-identical.
DEFAULT_DOMAIN = "core"


def as_rate(rate: Union[Fraction, int, str, Tuple[int, int]],
            where: Optional[str] = None) -> Fraction:
    """Normalize a clock rate to an exact ``Fraction`` in ``(0, 1]``.

    Accepts a ``Fraction``, an ``int``, a ``"p/q"`` string, or a
    ``(p, q)`` pair.  Rates are relative to the base (fastest) clock,
    so ``Fraction(1)`` is full speed and ``Fraction(1, 2)`` ticks every
    other base cycle.
    """
    location = f" for {where}" if where else ""
    try:
        if isinstance(rate, tuple):
            value = Fraction(*rate)
        else:
            value = Fraction(rate)
    except (ValueError, ZeroDivisionError, TypeError) as exc:
        raise StructuralError(
            f"bad clock rate {rate!r}{location}: {exc}")
    if not 0 < value <= 1:
        raise StructuralError(
            f"clock rate {rate!r}{location} out of range: rates are "
            f"relative to the base clock and must satisfy 0 < rate <= 1")
    return value

VALID_RELAY_SPECS = ("full", "half", "half-registered")

#: Which protocol variants support each relay spec (by enum value).
#: Today both variants implement all three stations; the table exists
#: so the single validation point below can name the supporting
#: variants in its error, and so a future variant with a narrower
#: station set only has to edit one row.
RELAY_SPEC_SUPPORT = {
    "full": ("carloni", "casu"),
    "half": ("carloni", "casu"),
    "half-registered": ("carloni", "casu"),
}


def validate_relay_spec(spec: str, where: Optional[str] = None) -> str:
    """The one relay-spec validity check (graph, IR and lid all call it).

    Raises :class:`~repro.errors.StructuralError` naming the offending
    spec, the location (*where*, e.g. ``"edge A->B"``) and the valid
    specs with the variants that support them.
    """
    if spec in VALID_RELAY_SPECS:
        return spec
    choices = "; ".join(
        f"{valid} [variants: {', '.join(RELAY_SPEC_SUPPORT[valid])}]"
        for valid in VALID_RELAY_SPECS)
    location = f" on {where}" if where else ""
    raise StructuralError(
        f"unknown relay spec {spec!r}{location} (valid specs: {choices})")


@dataclasses.dataclass(frozen=True)
class BridgeSpec:
    """Parameters of one bisynchronous-FIFO clock-domain bridge.

    ``depth`` is the FIFO capacity in tokens.  ``write_rate`` /
    ``read_rate`` are the clock rates of the producer / consumer sides;
    they default to the rates of the domains the edge connects and are
    filled in (and cross-checked) by :meth:`SystemGraph.add_edge`.
    """

    depth: int = 2
    write_rate: Optional[Fraction] = None
    read_rate: Optional[Fraction] = None


def validate_bridge_spec(spec: Union[BridgeSpec, int],
                         where: Optional[str] = None) -> BridgeSpec:
    """The one bridge-spec validity check (graph and IR both call it).

    Mirrors :func:`validate_relay_spec`: raises
    :class:`~repro.errors.StructuralError` naming the offending
    parameter and the location.  An ``int`` is shorthand for
    ``BridgeSpec(depth=n)``.
    """
    location = f" on {where}" if where else ""
    if isinstance(spec, int) and not isinstance(spec, bool):
        spec = BridgeSpec(depth=spec)
    if not isinstance(spec, BridgeSpec):
        raise StructuralError(
            f"bad bridge spec {spec!r}{location} (expected a BridgeSpec "
            f"or an int FIFO depth)")
    if not isinstance(spec.depth, int) or spec.depth < 1:
        raise StructuralError(
            f"bridge depth must be an int >= 1, got "
            f"{spec.depth!r}{location}")
    normalized = {}
    for label in ("write_rate", "read_rate"):
        rate = getattr(spec, label)
        if rate is not None:
            normalized[label] = as_rate(
                rate, where=f"bridge {label}{location}")
    if normalized:
        spec = dataclasses.replace(spec, **normalized)
    return spec


@dataclasses.dataclass
class Node:
    """One block of the system graph.

    ``queue_depth`` marks a shell as a queued shell (input FIFOs with
    registered stop, see :class:`repro.lid.queued_shell.QueuedShell`);
    ``None`` means the paper's plain shell.
    """

    name: str
    kind: str  # "shell" | "source" | "sink"
    pearl_factory: Optional[Callable[[], Any]] = None
    stream_factory: Optional[Callable[[], Any]] = None
    stop_script: Optional[Callable[[int], bool]] = None
    queue_depth: Optional[int] = None
    domain: str = DEFAULT_DOMAIN

    def __post_init__(self):
        if self.kind not in ("shell", "source", "sink"):
            raise StructuralError(f"unknown node kind {self.kind!r}")
        if self.kind == "shell" and self.pearl_factory is None:
            raise StructuralError(f"shell {self.name!r} needs a pearl factory")
        if self.queue_depth is not None:
            if self.kind != "shell":
                raise StructuralError(
                    f"{self.name!r}: only shells can be queued")
            if self.queue_depth < 1:
                raise StructuralError(
                    f"{self.name!r}: queue_depth must be >= 1")


@dataclasses.dataclass
class Edge:
    """One connection, with its relay-station chain."""

    src: str
    dst: str
    src_port: Optional[str] = None
    dst_port: Optional[str] = None
    relays: Tuple[RelaySpec, ...] = ()
    bridge: Optional[BridgeSpec] = None

    def __post_init__(self):
        self.relays = tuple(self.relays)
        for spec in self.relays:
            validate_relay_spec(spec, where=f"edge {self.src}->{self.dst}")
        if self.bridge is not None:
            self.bridge = validate_bridge_spec(
                self.bridge, where=f"edge {self.src}->{self.dst}")

    @property
    def relay_count(self) -> int:
        return len(self.relays)

    def key(self) -> Tuple[str, Optional[str], str, Optional[str]]:
        return (self.src, self.src_port, self.dst, self.dst_port)


class SystemGraph:
    """A buildable, analyzable description of a LID system."""

    def __init__(self, name: str = "system"):
        self.name = name
        self.nodes: Dict[str, Node] = {}
        self.edges: List[Edge] = []
        #: Clock domains by name; every graph starts with the implicit
        #: base-rate default domain.
        self.domains: Dict[str, Fraction] = {DEFAULT_DOMAIN: Fraction(1)}

    # -- construction ------------------------------------------------------

    def add_domain(self, name: str, rate) -> Fraction:
        """Register clock domain *name* at rational *rate* (≤ 1).

        Re-registering an existing domain with the same rate is a
        no-op; a different rate is an error.  Nodes join a domain via
        the ``domain=`` argument of the add_* builders.
        """
        value = as_rate(rate, where=f"domain {name!r}")
        existing = self.domains.get(name)
        if existing is not None and existing != value:
            raise StructuralError(
                f"domain {name!r} already registered at rate {existing} "
                f"(got {value})")
        self.domains[name] = value
        return value

    def domain_rate(self, node_name: str) -> Fraction:
        """The clock rate of the domain *node_name* lives in."""
        return self.domains[self.nodes[node_name].domain]

    def is_single_clock(self) -> bool:
        """True when every node runs at base rate and no edge bridges."""
        return (all(self.domains[n.domain] == 1
                    for n in self.nodes.values())
                and all(e.bridge is None for e in self.edges))

    def add_shell(self, name: str, pearl_factory: Callable[[], Any],
                  domain: str = DEFAULT_DOMAIN) -> Node:
        return self._add_node(Node(name, "shell",
                                   pearl_factory=pearl_factory,
                                   domain=domain))

    def add_queued_shell(self, name: str,
                         pearl_factory: Callable[[], Any],
                         queue_depth: int = 2,
                         domain: str = DEFAULT_DOMAIN) -> Node:
        return self._add_node(Node(name, "shell",
                                   pearl_factory=pearl_factory,
                                   queue_depth=queue_depth,
                                   domain=domain))

    def add_source(self, name: str, stream_factory=None,
                   domain: str = DEFAULT_DOMAIN) -> Node:
        return self._add_node(Node(name, "source",
                                   stream_factory=stream_factory,
                                   domain=domain))

    def add_sink(self, name: str, stop_script=None,
                 domain: str = DEFAULT_DOMAIN) -> Node:
        return self._add_node(Node(name, "sink", stop_script=stop_script,
                                   domain=domain))

    def _add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise StructuralError(f"duplicate node name {node.name!r}")
        if node.domain not in self.domains:
            raise StructuralError(
                f"{node.name!r}: unknown clock domain {node.domain!r} "
                f"(registered: {sorted(self.domains)}; use "
                f"add_domain(name, rate) first)")
        self.nodes[node.name] = node
        return node

    def add_edge(
        self,
        src: str,
        dst: str,
        relays: Iterable[RelaySpec] | int = (),
        src_port: Optional[str] = None,
        dst_port: Optional[str] = None,
        bridge: Optional[Union[BridgeSpec, int]] = None,
    ) -> Edge:
        """Connect *src* to *dst* with the given relay chain.

        *relays* may be an integer (that many full relay stations) or an
        explicit spec sequence, producer side first.  An edge whose
        endpoints live in different clock domains must carry a
        *bridge* — a :class:`BridgeSpec` (or an int FIFO depth); the
        bridge sits after the relay chain, directly before *dst*.
        """
        for name in (src, dst):
            if name not in self.nodes:
                raise StructuralError(f"unknown node {name!r}")
        if self.nodes[src].kind == "sink":
            raise StructuralError(f"sink {src!r} cannot produce")
        if self.nodes[dst].kind == "source":
            raise StructuralError(f"source {dst!r} cannot consume")
        if isinstance(relays, int):
            relays = ("full",) * relays
        src_dom = self.nodes[src].domain
        dst_dom = self.nodes[dst].domain
        where = f"edge {src}->{dst}"
        if src_dom != dst_dom:
            if bridge is None:
                raise StructuralError(
                    f"{where} crosses clock domains {src_dom!r} "
                    f"(rate {self.domains[src_dom]}) -> {dst_dom!r} "
                    f"(rate {self.domains[dst_dom]}) and must carry a "
                    f"bisynchronous FIFO bridge: pass "
                    f"bridge=BridgeSpec(depth=...) or bridge=<depth>")
            bridge = validate_bridge_spec(bridge, where=where)
            for label, dom in (("write_rate", src_dom),
                               ("read_rate", dst_dom)):
                given = getattr(bridge, label)
                if given is not None and given != self.domains[dom]:
                    raise StructuralError(
                        f"{where}: bridge {label} {given} contradicts "
                        f"domain {dom!r} rate {self.domains[dom]}")
            bridge = dataclasses.replace(
                bridge, write_rate=self.domains[src_dom],
                read_rate=self.domains[dst_dom])
        elif bridge is not None:
            raise StructuralError(
                f"{where} stays inside clock domain {src_dom!r}; "
                f"bridges belong only on domain-crossing edges")
        edge = Edge(src, dst, src_port, dst_port, tuple(relays),
                    bridge=bridge)
        self.edges.append(edge)
        return edge

    # -- queries ---------------------------------------------------------

    def shells(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.kind == "shell"]

    def sources(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.kind == "source"]

    def sinks(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.kind == "sink"]

    def out_edges(self, name: str) -> List[Edge]:
        return [e for e in self.edges if e.src == name]

    def in_edges(self, name: str) -> List[Edge]:
        return [e for e in self.edges if e.dst == name]

    def relay_count(self, kind: Optional[str] = None) -> int:
        """Total relay stations, optionally of one spec kind."""
        total = 0
        for edge in self.edges:
            if kind is None:
                total += len(edge.relays)
            else:
                total += sum(1 for s in edge.relays if s == kind)
        return total

    def to_networkx(self) -> nx.MultiDiGraph:
        """Block-level multigraph (edge data: the :class:`Edge`)."""
        g = nx.MultiDiGraph(name=self.name)
        for node in self.nodes.values():
            g.add_node(node.name, kind=node.kind)
        for edge in self.edges:
            g.add_edge(edge.src, edge.dst, edge=edge)
        return g

    def shell_cycles(self) -> List[List[str]]:
        """Simple cycles of the block graph (each a list of node names).

        These are the paper's "loops of shells and relay stations"; the
        feedback-throughput formula and the deadlock criteria quantify
        over them.  Delegates to the memoized lowering, so repeated
        analysis passes share one walk.
        """
        from ..ir import lower

        return lower(self).shell_cycles()

    def is_feedforward(self) -> bool:
        """True when the block graph is acyclic (tree or reconvergent)."""
        from ..ir import lower

        return lower(self).is_feedforward()

    def loop_census(self, cycle: Sequence[str]) -> Tuple[int, int]:
        """``(S, R)`` for one cycle: shells and relay stations on it.

        *cycle* is a list of node names forming a directed cycle.  When
        parallel edges exist between consecutive nodes, the one with the
        fewest relay stations is counted (the protocol's tokens can take
        any of them; the analysis formulas use per-loop counts).
        """
        from ..ir import lower

        return lower(self).loop_census(cycle)

    def validate(self) -> None:
        """Structural sanity: ports exist, shells fully connected."""
        for edge in self.edges:
            self._check_port(edge.src, edge.src_port, output=True)
            self._check_port(edge.dst, edge.dst_port, output=False)
        for node in self.shells():
            pearl = node.pearl_factory()
            in_ports = {e.dst_port or self._only_port(pearl, False)
                        for e in self.in_edges(node.name)}
            out_ports = {e.src_port or self._only_port(pearl, True)
                         for e in self.out_edges(node.name)}
            missing_in = set(pearl.input_ports) - in_ports
            missing_out = set(pearl.output_ports) - out_ports
            if missing_in or missing_out:
                raise StructuralError(
                    f"shell {node.name!r}: unconnected ports "
                    f"(inputs {sorted(missing_in)}, outputs {sorted(missing_out)})"
                )

    def _check_port(self, name: str, port: Optional[str], output: bool) -> None:
        node = self.nodes[name]
        if node.kind != "shell":
            return
        pearl = node.pearl_factory()
        ports = pearl.output_ports if output else pearl.input_ports
        if port is None:
            if len(ports) != 1:
                raise StructuralError(
                    f"{name!r}: port name required (choices: {list(ports)})"
                )
        elif port not in ports:
            raise StructuralError(
                f"{name!r}: no {'output' if output else 'input'} port {port!r}"
            )

    @staticmethod
    def _only_port(pearl, output: bool) -> str:
        ports = pearl.output_ports if output else pearl.input_ports
        return ports[0]

    # -- elaboration -----------------------------------------------------

    def elaborate(self, variant=None, strict: bool = True):
        """Build a runnable :class:`~repro.lid.system.LidSystem`.

        Every call produces a fresh system with fresh pearls, so graphs
        double as reusable experiment specifications.  Construction
        goes through the canonical lowering
        (:func:`repro.ir.lower`), like every other backend.
        """
        from ..ir import lower

        return lower(self).elaborate(variant=variant, strict=strict)

    def __getstate__(self):
        # The lowering memo (repro.ir.lower) must not travel with
        # pickled graphs: it holds derived tables and lazy caches that
        # would bloat GraphRef payloads; workers re-lower on demand.
        state = self.__dict__.copy()
        state.pop("_lowered_cache", None)
        return state

    def copy(self, name: Optional[str] = None) -> "SystemGraph":
        """Shallow-copy the topology (factories are shared)."""
        dup = SystemGraph(name or self.name)
        dup.domains = dict(self.domains)
        for node in self.nodes.values():
            dup._add_node(dataclasses.replace(node))
        for edge in self.edges:
            dup.edges.append(dataclasses.replace(edge))
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SystemGraph({self.name!r}, nodes={len(self.nodes)}, "
            f"edges={len(self.edges)}, relays={self.relay_count()})"
        )

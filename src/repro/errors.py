"""Exception hierarchy for the LIP reproduction toolkit.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch the whole family with a single ``except`` clause while
still being able to distinguish structural problems (bad netlists), protocol
violations observed at simulation time, and verification failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class StructuralError(ReproError):
    """A netlist or system graph is malformed.

    Raised by builders and by :mod:`repro.lid.lint` — e.g. a channel with two
    drivers, a shell port left unconnected, or two shells connected without an
    intervening relay station (which the paper forbids because the shell does
    not register incoming stop signals).
    """


class CombinationalLoopError(StructuralError):
    """The backward stop network contains a true combinational cycle.

    This happens when a directed cycle of the system graph contains only
    shells and half relay stations: every block on the cycle propagates the
    stop signal combinationally, so the stop would feed back into itself
    within a single clock cycle.  The paper's remedy is to place at least one
    full relay station (registered stop) on every cycle.
    """


class ConvergenceError(ReproError):
    """The combinational settle phase failed to reach a fixpoint.

    With the monotone stop semantics used by this package this indicates an
    internal error or a user-written component whose combinational function
    is not monotone/idempotent.
    """


class ProtocolViolationError(ReproError):
    """A protocol invariant was violated during simulation.

    Examples: a token was overwritten before being consumed, or a block
    changed a held output while its stop input was asserted.  These checks
    are the runtime counterparts of the paper's SMV safety properties.

    Besides the human-readable message, the exception carries the
    structured coordinates of the violation so that telemetry exporters
    and test harnesses need not parse the text: the *cycle* it was
    detected at, the *channel* name, the protocol *variant* in force and
    the *invariant* identifier (``"hold"``, ``"no-phantom-drop"``,
    ``"stop-shape"``, ``"no-duplicate"``).
    """

    def __init__(self, message: str, *, cycle=None, channel=None,
                 variant=None, invariant=None):
        super().__init__(message)
        self.cycle = cycle
        self.channel = channel
        self.variant = variant
        self.invariant = invariant

    def details(self) -> dict:
        """JSON-compatible structured view of the violation."""
        return {
            "message": str(self),
            "cycle": self.cycle,
            "channel": self.channel,
            "variant": str(self.variant) if self.variant else None,
            "invariant": self.invariant,
        }


class DeadlockError(ReproError):
    """Simulation detected a deadlock (no block can ever fire again)."""


class PeriodicityTimeout(ReproError, TimeoutError):
    """A skeleton run found no periodic regime within its cycle budget.

    Subclasses :class:`TimeoutError` for backward compatibility with
    callers that caught the raw timeout.  The structured fields let the
    CLI and the fault-injection campaign turn the condition into a clean
    ``inconclusive`` verdict instead of a traceback: the budget was too
    small for the system's state space, which is a diagnosis, not a
    crash.
    """

    def __init__(self, message: str, *, graph=None, max_cycles=None):
        super().__init__(message)
        self.graph = graph
        self.max_cycles = max_cycles


class ExecutionError(ReproError):
    """The parallel execution layer could not run a workload.

    E.g. a work unit that cannot be pickled across the process
    boundary (a system graph holding closures with no
    :class:`repro.exec.GraphRef` to rebuild it from), or a work-unit
    reference naming a callable that does not resolve to a module-level
    function in the worker.
    """


class WorkerCrashError(ExecutionError):
    """A worker process died without delivering its result.

    Raised in place of :class:`concurrent.futures.process.
    BrokenProcessPool` so that callers of the ``repro.exec`` layer only
    ever see :class:`ReproError` subclasses.  A worker that raises an
    ordinary exception does *not* produce this error — the exception is
    pickled back and re-raised with its own type; this one means the
    process itself vanished (killed, segfaulted, ``os._exit``).
    """


class InjectionError(ReproError):
    """A fault-injection campaign was misconfigured.

    E.g. a fault spec naming a channel or relay station that does not
    exist in the elaborated system, or a fault kind the targeted block
    cannot express (duplicating inside a one-register half relay
    station).
    """


class VerificationError(ReproError):
    """A formal verification run found a property violation.

    The exception carries the counterexample trace when available.
    """

    def __init__(self, message: str, counterexample=None):
        super().__init__(message)
        self.counterexample = counterexample


class AnalysisError(ReproError):
    """A static analysis could not be performed on the given graph.

    E.g. asking for the reconvergent-topology formula on a graph that is not
    a reconvergent feed-forward topology.
    """


class ElaborationError(ReproError):
    """RTL elaboration failed (unbound port, width mismatch, bad primitive)."""

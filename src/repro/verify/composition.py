"""Compositional verification: chains of blocks checked end to end.

The paper verifies each block in isolation under an environment
assumption, and argues compositionality informally ("any composition of
blocks will behave in a latency insensitive sense...").  This module
discharges small instances of that argument mechanically: a *chain* of
relay stations (any mix of flavours), optionally fed by a shell, is
explored exhaustively against the same nondeterministic environment,
with the order/no-skip/hold monitors now watching the far end of the
chain.

Because each station's stop output is exactly the next environment's
stop input, the per-block environment assumptions are discharged
*constructively*: if every block satisfies its contract, the chain's
exploration cannot find a violation — and the checker confirms it
state by state rather than by hand-waving.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from . import fsm
from .env import DownstreamState, UpstreamState
from .monitors import HoldMonitor, OrderMonitor
from .reach import ReachResult, explore


@dataclasses.dataclass(frozen=True)
class _ChainState:
    stations: Tuple
    upstream: UpstreamState
    monitors: Tuple


def _station_outputs(kind: str, state, stop_in: bool,
                     variant: ProtocolVariant):
    """(token presented, stop to upstream) for one station."""
    if kind == "full":
        return fsm.full_rs_outputs(state)
    registered = kind == "half-registered"
    return state.main, fsm.half_rs_stop_out(state, stop_in, variant,
                                            registered)


def _station_step(kind: str, state, in_tok, stop_in: bool,
                  variant: ProtocolVariant):
    if kind == "full":
        return fsm.full_rs_step(state, in_tok, stop_in, variant)
    registered = kind == "half-registered"
    return fsm.half_rs_step(state, in_tok, stop_in, variant, registered)


_STATION_KINDS = ("full", "half", "half-registered")


def _initial_station(kind: str):
    if kind not in _STATION_KINDS:
        raise ValueError(
            f"unknown station kind {kind!r}; choose from {_STATION_KINDS}"
        )
    return fsm.FullRsState() if kind == "full" else fsm.HalfRsState()


def verify_chain(
    kinds: Sequence[str],
    variant: ProtocolVariant = DEFAULT_VARIANT,
    max_states: int = 400_000,
) -> ReachResult:
    """Exhaustively check a relay-station chain end to end.

    *kinds* lists the stations from upstream to downstream (e.g.
    ``["full", "half", "full"]``).  The environment offers ordered
    tokens at the head (holding on stop, per the contract) and stops
    nondeterministically at the tail; the monitors assert order,
    no-skip and hold-on-stop **at the tail output** — the composed
    system's contract.
    """
    kinds = list(kinds)
    if not kinds:
        raise ValueError("chain needs at least one station")

    initial = _ChainState(
        stations=tuple(_initial_station(k) for k in kinds),
        upstream=UpstreamState(),
        monitors=(OrderMonitor(), HoldMonitor()),
    )

    def successors(state: _ChainState):
        for present in state.upstream.choices():
            for tail_stop in DownstreamState.choices():
                # Settle stop wires back-to-front: station i's stop
                # input is station i+1's stop output.
                stops_in: List[bool] = [False] * len(kinds)
                stop = tail_stop
                for index in range(len(kinds) - 1, -1, -1):
                    stops_in[index] = stop
                    _tok, stop = _station_outputs(
                        kinds[index], state.stations[index], stop,
                        variant)
                head_stop_out = stop

                # Forward tokens presented this cycle.
                tokens = [
                    _station_outputs(kinds[i], state.stations[i],
                                     stops_in[i], variant)[0]
                    for i in range(len(kinds))
                ]
                tail_tok = tokens[-1]

                order, hold = state.monitors
                order = order.advance(tail_tok, tail_stop)
                hold = hold.advance(tail_tok, tail_stop)

                new_stations = []
                feed = present
                for index, kind in enumerate(kinds):
                    new_stations.append(_station_step(
                        kind, state.stations[index], feed,
                        stops_in[index], variant))
                    feed = tokens[index]

                next_state = _ChainState(
                    stations=tuple(new_stations),
                    upstream=state.upstream.after(present, head_stop_out),
                    monitors=(order, hold),
                )
                label = (f"in={present} tail_stop={int(tail_stop)}")
                yield label, next_state

    return explore([initial], successors, max_states=max_states)


def verify_all_chains(
    max_length: int = 2,
    variant: ProtocolVariant = DEFAULT_VARIANT,
) -> List[Tuple[Tuple[str, ...], ReachResult]]:
    """Check every chain of station flavours up to *max_length*."""
    import itertools

    flavours = ("full", "half", "half-registered")
    results = []
    for length in range(1, max_length + 1):
        for combo in itertools.product(flavours, repeat=length):
            results.append((combo, verify_chain(combo, variant)))
    return results


@dataclasses.dataclass(frozen=True)
class _ShellChainState:
    shell_out: Optional[int]
    stations: Tuple
    upstream: UpstreamState
    monitors: Tuple


def verify_shell_chain(
    kinds: Sequence[str],
    variant: ProtocolVariant = DEFAULT_VARIANT,
    max_states: int = 400_000,
) -> ReachResult:
    """A 1x1 shell feeding a relay chain, verified at the chain's tail.

    This is the system fragment the paper's methodology actually
    builds — shell, then pipelined wire — checked as one product: the
    ordered stream entering the shell must exit the last station in
    order, unskipped, and held under stops, with the shell's
    combinational stall/back-pressure logic in the loop.
    """
    from .env import PAYLOAD_MODULUS

    kinds = list(kinds)
    initial = _ShellChainState(
        shell_out=PAYLOAD_MODULUS - 1,  # shells reset valid
        stations=tuple(_initial_station(k) for k in kinds),
        upstream=UpstreamState(),
        monitors=(OrderMonitor(expected=PAYLOAD_MODULUS - 1),
                  HoldMonitor()),
    )

    def successors(state: _ShellChainState):
        for present in state.upstream.choices():
            for tail_stop in DownstreamState.choices():
                # Stops settle back-to-front through the stations...
                stops_in: List[bool] = [False] * len(kinds)
                stop = tail_stop
                for index in range(len(kinds) - 1, -1, -1):
                    stops_in[index] = stop
                    _tok, stop = _station_outputs(
                        kinds[index], state.stations[index], stop,
                        variant)
                shell_stop_in = stop  # first station's stop output
                # ...and through the shell to the environment.
                blocked = variant.output_blocked(
                    shell_stop_in, state.shell_out is not None)
                fire = present is not None and not blocked
                env_stop = variant.back_pressure(
                    not fire, present is not None)

                tokens = [
                    _station_outputs(kinds[i], state.stations[i],
                                     stops_in[i], variant)[0]
                    for i in range(len(kinds))
                ]
                tail_tok = tokens[-1] if kinds else state.shell_out

                order, hold = state.monitors
                order = order.advance(tail_tok, tail_stop)
                hold = hold.advance(tail_tok, tail_stop)

                # Shell output register update.
                if fire:
                    next_shell_out = present % PAYLOAD_MODULUS
                else:
                    held = (state.shell_out is not None
                            and shell_stop_in)
                    next_shell_out = state.shell_out if held else None

                new_stations = []
                feed = state.shell_out
                for index, kind in enumerate(kinds):
                    new_stations.append(_station_step(
                        kind, state.stations[index], feed,
                        stops_in[index], variant))
                    feed = tokens[index]

                yield (
                    f"in={present} tail_stop={int(tail_stop)}",
                    _ShellChainState(
                        shell_out=next_shell_out,
                        stations=tuple(new_stations),
                        upstream=state.upstream.after(present, env_stop),
                        monitors=(order, hold),
                    ),
                )

    return explore([initial], successors, max_states=max_states)

"""Tests for the data-series generators."""

from fractions import Fraction

import pytest

from repro.analysis.sweep import (
    SERIES_GENERATORS,
    Series,
    imbalance_series,
    loop_series,
    stop_activity_series,
    transient_series,
)
from repro.lid.variant import ProtocolVariant


class TestSeriesContainer:
    def test_axes_and_points(self):
        series = Series("s", "x", "y", [(1, 2), (3, 4)])
        assert series.xs() == [1, 3]
        assert series.ys() == [2, 4]
        assert len(series) == 2

    def test_csv_rendering(self):
        series = Series("s", "x", "y", [(1, Fraction(1, 2))])
        csv = series.to_csv()
        assert csv.splitlines() == ["x,y", "1,1/2"]


class TestLoopSeries:
    def test_matches_formula(self):
        series = loop_series(shells=2, max_relays=6)
        for relays, rate in series.points:
            assert rate == Fraction(2, 2 + relays)

    def test_monotone_decreasing(self):
        ys = loop_series(shells=3, max_relays=7).ys()
        assert ys == sorted(ys, reverse=True)


class TestImbalanceSeries:
    def test_matches_formula(self):
        series = imbalance_series(max_extra=4)
        for extra, rate in series.points:
            # long = 1+extra+1 stations, short = 1 -> i = extra + 1 ...
            # except extra=0 where the default instance has i=1, m=5.
            from repro.analysis import analyze_reconvergence
            from repro.graph import reconvergent

            graph = reconvergent(long_relays=(1 + extra, 1),
                                 short_relays=1)
            _i, _m, predicted = analyze_reconvergence(graph, "A", "C")
            assert rate == predicted

    def test_starts_at_figure1_value(self):
        series = imbalance_series(max_extra=1)
        assert series.points[0][1] == Fraction(4, 5)


class TestTransientSeries:
    def test_monotone_increasing(self):
        ys = transient_series(max_relays_per_hop=4).ys()
        assert ys == sorted(ys)

    def test_positive(self):
        assert all(y > 0 for y in transient_series(3).ys())


class TestStopActivitySeries:
    def test_zero_duty_low_activity(self):
        series = stop_activity_series(duty_steps=4)
        duty0 = series.points[0][1]
        duty_full = series.points[-1][1]
        assert duty_full > duty0

    def test_variant_parametrized(self):
        refined = stop_activity_series(ProtocolVariant.CASU,
                                       duty_steps=2)
        original = stop_activity_series(ProtocolVariant.CARLONI,
                                        duty_steps=2)
        assert refined.name != original.name


class TestRegistry:
    def test_all_generators_runnable(self):
        for name, generator in SERIES_GENERATORS.items():
            series = generator()
            assert len(series) > 0, name
            assert series.to_csv().count("\n") == len(series) + 1


class TestCli:
    def test_series_command(self, capsys):
        from repro.cli import main

        assert main(["series", "loop"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("relay stations R,throughput")

    def test_series_to_file(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "s.csv"
        assert main(["series", "imbalance", "-o", str(path)]) == 0
        assert path.read_text().startswith("extra relay stations")

"""Fault injection and robustness campaigns for LID systems.

The paper argues that implementation details of the protocol blocks
(registered vs. unregistered stop, one vs. two relay registers) decide
whether a latency-insensitive system tolerates adverse conditions.
This package turns that argument into experiments:

* :mod:`repro.inject.faults` — composable fault models (stuck-at and
  glitched stop/valid wires, the delayed-stop hazard, payload
  corruption, relay token drop/duplication) and deterministic fault
  list generation;
* :mod:`repro.inject.injector` — applies one fault to a live system
  through the scheduler's wire/state injection phases;
* :mod:`repro.inject.campaign` — runs whole fault lists, classifies
  each outcome as ``detected`` / ``silent-corruption`` / ``masked`` /
  ``deadlock`` / ``timeout`` against a golden run, and renders
  byte-reproducible reports; boundary control faults batch onto the
  vectorized skeleton engine.

CLI: ``repro-lid inject --topology feedback --faults stop,void``.
"""

from .campaign import (
    CampaignReport,
    ExperimentResult,
    GoldenRun,
    VERDICTS,
    run_campaign,
    run_experiment,
    skeleton_campaign,
    tail_window,
)
from .faults import (
    ALL_KINDS,
    FAULT_CLASSES,
    FaultSpec,
    STATE_KINDS,
    TargetSet,
    WIRE_KINDS,
    enumerate_targets,
    generate_faults,
    resolve_classes,
)
from .injector import FaultInjector, default_corruptor

__all__ = [
    "ALL_KINDS",
    "CampaignReport",
    "ExperimentResult",
    "FAULT_CLASSES",
    "FaultInjector",
    "FaultSpec",
    "GoldenRun",
    "STATE_KINDS",
    "TargetSet",
    "VERDICTS",
    "WIRE_KINDS",
    "default_corruptor",
    "enumerate_targets",
    "generate_faults",
    "resolve_classes",
    "run_campaign",
    "run_experiment",
    "skeleton_campaign",
    "tail_window",
]

"""Differential conformance: every batch backend vs scalar reference.

Each batch engine's contract is **bit-exactness**: for every instance
of a batch, every register, wire, firing decision and instrumentation
counter must equal a scalar :class:`SkeletonSim` run with the same
scripts, cycle by cycle.  This suite drives the engines in lockstep
over the full feature matrix — protocol variants x relay kinds x
fixpoints x scripted sources/sinks — through the raw engine classes,
the unified ``repro.skeleton.backend.select`` API, and a sweep over
every benchmark workload topology.

Registering a new backend is one edit: add its ``select()`` name to
``BACKENDS`` and teach the two column adapters (`_column_bits`,
`_column_counters`) how to read a column of its state.  Every test
here parametrizes over that list, so the new engine inherits the whole
contract.
"""

import numpy as np
import pytest

from repro.bench import workloads
from repro.graph import figure1, figure2, pipeline, ring, tree
from repro.graph.random_gen import random_dag, random_loopy
from repro.lid.variant import ProtocolVariant
from repro.obs import Telemetry
from repro.skeleton import (
    BatchSkeletonSim,
    BitplaneBackend,
    BitplaneSkeletonSim,
    CodegenBackend,
    CodegenSkeletonSim,
    ScalarBackend,
    SkeletonSim,
    VectorizedBackend,
    bitsim_supported,
    codegen_supported,
    select,
    vectorized_supported,
)

VARIANTS = [ProtocolVariant.CASU, ProtocolVariant.CARLONI]

#: Every name ``select()`` accepts; the single registration point for
#: the differential harness.
BACKENDS = ["scalar", "vectorized", "bitsim", "codegen"]

#: The batch engines, lockstep-compared against the scalar reference.
BATCH_ENGINES = {
    "vectorized": BatchSkeletonSim,
    "bitsim": BitplaneSkeletonSim,
}


def _column_bits(sim, values, column):
    """One instance's bools from a batch engine's per-signal state."""
    if isinstance(sim, BitplaneSkeletonSim):
        return tuple(bool((word >> column) & 1) for word in values)
    return tuple(bool(x) for x in np.asarray(values)[:, column])


def _column_counters(sim, column):
    """(assertions, on-voids, internal on-voids) for one instance."""
    if isinstance(sim, BitplaneSkeletonSim):
        return (sim.stop_assertions.value(column),
                sim.stops_on_voids.value(column),
                sim.internal_stops_on_voids.value(column))
    return (int(sim.stop_assertions_total[column]),
            int(sim.stops_on_voids_total[column]),
            int(sim.internal_stops_on_voids_total[column]))


def _all_relays(graph, kind):
    for edge in graph.edges:
        if edge.relays:
            edge.relays = (kind,) * len(edge.relays)
    return graph


def _graph_matrix():
    return [
        pipeline(3, relays_per_hop=2),
        figure1(),
        figure2(),
        tree(2),
        ring(3, relays_per_arc=[["full"], ["half"],
                                ["half-registered"]]),
        _all_relays(pipeline(3), "half"),
        _all_relays(pipeline(3), "half-registered"),
        random_dag(seed=7, shells=5, half_probability=0.5),
        random_loopy(seed=3, shells=4),
    ]


def _scripts_for(graph):
    """A few sink/source script pairs adapted to the graph's names."""
    sinks = [n.name for n in graph.sinks()]
    sources = [n.name for n in graph.sources()]
    combos = [({}, {})]
    if sinks:
        combos.append(({sinks[0]: (False, False, True, True)}, {}))
    if sources:
        combos.append(({}, {sources[0]: (True, False, True)}))
    if sinks and sources:
        combos.append(({sinks[0]: (True, False)},
                       {sources[0]: (False, True)}))
    return combos


def _lockstep(graph, variant, fixpoint, sink_map, source_map, backend,
              cycles=60):
    """Drive scalar and one batch engine; compare all state per cycle."""
    scalar = SkeletonSim(graph, sink_patterns=sink_map,
                         source_patterns=source_map, variant=variant,
                         fixpoint=fixpoint,
                         telemetry=Telemetry.metrics_only())
    batch = BATCH_ENGINES[backend](
        graph, [sink_map], source_patterns=[source_map],
        variant=variant, fixpoint=fixpoint,
        telemetry=Telemetry.metrics_only())
    for cycle in range(cycles):
        s_fires, s_accepts = scalar.step()
        b_fires, b_accepts = batch.step()
        ctx = (backend, graph.name, variant.name, fixpoint, cycle)
        assert _column_bits(batch, b_fires, 0) == s_fires, \
            ("fires", ctx)
        assert _column_bits(batch, b_accepts, 0) == s_accepts, \
            ("accepts", ctx)
        assert _column_bits(batch, batch.shell_reg, 0) \
            == tuple(scalar.shell_reg), ("reg", ctx)
        assert _column_bits(batch, batch.rs_main, 0) \
            == tuple(scalar.rs_main), ("main", ctx)
        assert _column_bits(batch, batch.rs_aux, 0) \
            == tuple(scalar.rs_aux), ("aux", ctx)
        assert _column_bits(batch, batch.rs_stop_reg, 0) \
            == tuple(scalar.rs_stop_reg), ("stop_reg", ctx)
        assert _column_counters(batch, 0) == (
            scalar.stop_assertions_total,
            scalar.stops_on_voids_total,
            scalar.internal_stops_on_voids_total), ("counters", ctx)
    assert batch.ambiguous_cycles[0] == scalar.ambiguous_cycles, \
        (backend, graph.name, variant.name, fixpoint)
    # Telemetry parity: the canonical metric snapshots (counters,
    # gauges and occupancy histograms) must be equal dicts — not
    # merely close; same keys, same integers, same derived floats.
    assert batch.metrics_snapshot(0) == scalar.metrics_snapshot(), \
        ("metrics", backend, graph.name, variant.name, fixpoint)


@pytest.mark.parametrize("backend", list(BATCH_ENGINES),
                         ids=list(BATCH_ENGINES))
class TestLockstepMatrix:
    """Registers, wires and counters identical, cycle by cycle."""

    @pytest.mark.parametrize("graph", _graph_matrix(),
                             ids=lambda g: g.name)
    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: v.name.lower())
    def test_least_fixpoint(self, graph, variant, backend):
        for sink_map, source_map in _scripts_for(graph):
            _lockstep(graph, variant, "least", sink_map, source_map,
                      backend)

    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: v.name.lower())
    def test_greatest_fixpoint_on_ambiguous_graphs(self, variant,
                                                   backend):
        """Latch-up semantics must also match where fixpoints differ."""
        for graph in (_all_relays(pipeline(3), "half"),
                      ring(2, relays_per_arc=[["half"], ["half"]])):
            for sink_map, source_map in _scripts_for(graph):
                _lockstep(graph, variant, "greatest", sink_map,
                          source_map, backend)

    def test_wide_batch_matches_scalar_columns(self, backend):
        """Many instances at once (bitsim: several machine words)."""
        graph = figure2()
        sinks = [n.name for n in graph.sinks()]
        sink_maps = [{sinks[0]: ((False,) * i + (True,) + (False,) * 3)}
                     for i in range(70)]
        batch = BATCH_ENGINES[backend](graph, sink_maps)
        for _ in range(40):
            batch.step()
        for column in (0, 1, 63, 64, 69):
            scalar = SkeletonSim(graph, sink_patterns=sink_maps[column])
            for _ in range(40):
                scalar.step()
            assert _column_counters(batch, column) == (
                scalar.stop_assertions_total,
                scalar.stops_on_voids_total,
                scalar.internal_stops_on_voids_total), column
            assert batch.metrics_snapshot(column) \
                == scalar.metrics_snapshot(), column


@pytest.mark.parametrize("backend", list(BATCH_ENGINES),
                         ids=list(BATCH_ENGINES))
class TestRunToPeriod:
    """Transient/period extraction must agree with SkeletonSim.run()."""

    @pytest.mark.parametrize("graph", _graph_matrix(),
                             ids=lambda g: g.name)
    def test_periodicity_matches(self, graph, backend):
        combos = _scripts_for(graph)
        sink_patterns = [sk for sk, _so in combos]
        source_patterns = [so for _sk, so in combos]
        batch = BATCH_ENGINES[backend](
            graph, sink_patterns, source_patterns=source_patterns)
        results = batch.run_to_period()
        for (sink_map, source_map), result in zip(combos, results):
            ref = SkeletonSim(graph, sink_patterns=sink_map,
                              source_patterns=source_map).run()
            assert result.transient == ref.transient, graph.name
            assert result.period == ref.period, graph.name
            assert result.shell_fires == ref.shell_fires, graph.name
            assert result.sink_accepts == ref.sink_accepts, graph.name
            assert result.deadlocked == ref.deadlocked, graph.name
            assert (result.potential_deadlock_cycle
                    == ref.potential_deadlock_cycle), graph.name


def _codegen_lockstep(graph, variant, fixpoint, sink_map, source_map,
                      cycles=60):
    """Compiled vs scalar: full state, every cycle, then batched."""
    scalar = SkeletonSim(graph, sink_patterns=sink_map,
                         source_patterns=source_map, variant=variant,
                         fixpoint=fixpoint,
                         telemetry=Telemetry.metrics_only())
    compiled = CodegenSkeletonSim(
        graph, sink_patterns=sink_map, source_patterns=source_map,
        variant=variant, fixpoint=fixpoint,
        telemetry=Telemetry.metrics_only())
    ctx = (graph.name, variant.name, fixpoint)
    for cycle in range(cycles):
        assert compiled.step() == scalar.step(), ("fires", ctx, cycle)
        assert compiled.state() == scalar.state(), ("state", ctx, cycle)
    assert compiled.ambiguous_cycles == scalar.ambiguous_cycles, ctx
    assert compiled.metrics_snapshot() == scalar.metrics_snapshot(), ctx
    # The batched entry point (run_cycles keeps state in locals) must
    # land on the same state as per-cycle stepping, across a split.
    batched = CodegenSkeletonSim(
        graph, sink_patterns=sink_map, source_patterns=source_map,
        variant=variant, fixpoint=fixpoint,
        telemetry=Telemetry.metrics_only())
    batched.run_cycles(cycles // 2)
    batched.run_cycles(cycles - cycles // 2)
    assert batched.state() == scalar.state(), ("batched state", ctx)
    assert batched.fire_history == scalar.fire_history, ctx
    assert batched.accept_history == scalar.accept_history, ctx
    assert batched.ambiguous_cycles == scalar.ambiguous_cycles, ctx
    assert batched.metrics_snapshot() == scalar.metrics_snapshot(), ctx


class TestCodegenLockstep:
    """The compiled engine is a per-instance engine: compare its whole
    inherited state against the scalar reference, cycle by cycle, on
    both entry points (``step`` and the batched ``run_cycles``)."""

    @pytest.mark.parametrize("graph", _graph_matrix(),
                             ids=lambda g: g.name)
    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: v.name.lower())
    def test_least_fixpoint(self, graph, variant):
        for sink_map, source_map in _scripts_for(graph):
            _codegen_lockstep(graph, variant, "least", sink_map,
                              source_map)

    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: v.name.lower())
    def test_greatest_fixpoint_on_ambiguous_graphs(self, variant):
        for graph in (_all_relays(pipeline(3), "half"),
                      ring(2, relays_per_arc=[["half"], ["half"]])):
            for sink_map, source_map in _scripts_for(graph):
                _codegen_lockstep(graph, variant, "greatest", sink_map,
                                  source_map)

    @pytest.mark.parametrize("graph", _graph_matrix(),
                             ids=lambda g: g.name)
    def test_run_to_periodicity_matches(self, graph):
        for sink_map, source_map in _scripts_for(graph):
            ref = SkeletonSim(graph, sink_patterns=sink_map,
                              source_patterns=source_map).run()
            got = CodegenSkeletonSim(graph, sink_patterns=sink_map,
                                     source_patterns=source_map).run()
            for field in ("transient", "period", "shell_fires",
                          "sink_accepts", "deadlocked",
                          "potential_deadlock_cycle"):
                assert getattr(got, field) == getattr(ref, field), \
                    (graph.name, field)


class TestBackendApi:
    """select() must hide the engine choice without changing results."""

    def test_selection_policy(self):
        graph = pipeline(2)
        assert isinstance(select(graph, batch=1), ScalarBackend)
        assert isinstance(select(graph, batch=4), VectorizedBackend)
        assert isinstance(select(graph, batch=4, backend="scalar"),
                          ScalarBackend)
        assert isinstance(select(graph, batch=1, backend="vectorized"),
                          VectorizedBackend)
        # The bit-plane engine is opt-in only: "auto" never picks it.
        assert isinstance(select(graph, batch=4, backend="bitsim"),
                          BitplaneBackend)
        assert isinstance(select(graph, batch=64), VectorizedBackend)
        # So is the compiled engine — explicit request only, any batch.
        for batch in (1, 4):
            handle = select(graph, batch=batch, backend="codegen")
            assert isinstance(handle, CodegenBackend)
            assert handle.name == "codegen"
        assert not isinstance(select(graph, batch=1), CodegenBackend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unknown_script_target_rejected_by_all(self, backend):
        """Input validation must not depend on the engine picked."""
        with pytest.raises(ValueError, match="unknown script target"):
            select(pipeline(2), sink_patterns=[{"nope": (True,)}],
                   backend=backend)
        with pytest.raises(ValueError, match="unknown script target"):
            select(pipeline(2), source_patterns=[{"nope": (True,)}],
                   backend=backend)

    def test_supported_reports_capability(self):
        for probe in (vectorized_supported, bitsim_supported,
                      codegen_supported):
            ok, reason = probe(pipeline(2), ProtocolVariant.CASU)
            assert ok, (probe.__name__, reason)

    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: v.name.lower())
    def test_backends_agree_through_select(self, variant):
        graph = figure1()
        patterns = [{}, {"out": (False, True)},
                    {"out": (False, False, True)}]
        counts = {}
        for backend in BACKENDS:
            handle = select(graph, variant, sink_patterns=patterns,
                            backend=backend)
            results = handle.run()
            handle2 = select(graph, variant, sink_patterns=patterns,
                             backend=backend)
            handle2.run_cycles(300)
            counts[backend] = (
                [(r.transient, r.period, r.shell_fires,
                  r.sink_accepts) for r in results],
                np.asarray(handle2.fire_counts()).tolist(),
                np.asarray(handle2.accept_counts()).tolist(),
                np.asarray(handle2.stop_assertion_counts()).tolist(),
                np.asarray(handle2.void_stop_counts()).tolist(),
            )
        for backend in BACKENDS[1:]:
            assert counts[backend] == counts["scalar"], backend

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scripted_sources_through_select(self, backend):
        graph = pipeline(2)
        handle = select(graph, batch=2, backend=backend,
                        source_patterns=[{}, {"src": (True, False)}])
        results = handle.run()
        rates = [r.shell_fires["S0"] / r.period for r in results]
        assert rates[0] == 1
        assert rates[1] == 0.5


def _bench_graphs():
    """Every benchmark workload topology, as (id, graph) pairs."""
    cases = [("figure1", workloads.figure1_workload()),
             ("figure2", workloads.figure2_workload())]
    cases += [(g.name, g) for _s, _r, g in workloads.ring_sweep()]
    cases += [(g.name, g) for _i, _m, g in workloads.reconvergent_sweep()]
    cases += [(g.name, g) for _d, _r, g in workloads.tree_sweep()]
    cases += [(f"comp_{i}", g)
              for i, (_label, g) in enumerate(workloads.composition_cases())]
    cases += [(g.name, g) for _c, _e, g in workloads.deadlock_suite()]
    cases += [(g.name, g) for g in workloads.pipeline_scaling((4, 16))]
    return cases


class TestBenchWorkloadSweep:
    """Every bench workload topology, every variant, every backend.

    The speedup and campaign benchmarks trust whichever backend they
    run on; this sweep is the license: fixed-cycle runs must agree on
    firing/acceptance counts, the stop-locality counters and the full
    metrics snapshot, for every workload the bench suite can generate.
    (Periodicity agreement is covered per relay-kind by
    TestRunToPeriod; fixed-cycle counters keep this sweep fast.)
    """

    @pytest.mark.parametrize("graph", [g for _id, g in _bench_graphs()],
                             ids=[i for i, _g in _bench_graphs()])
    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: v.name.lower())
    def test_counters_and_metrics_agree(self, graph, variant):
        combos = _scripts_for(graph)
        sink_patterns = [sk for sk, _so in combos]
        source_patterns = [so for _sk, so in combos]
        observed = {}
        for backend in BACKENDS:
            handle = select(graph, variant,
                            sink_patterns=sink_patterns,
                            source_patterns=source_patterns,
                            backend=backend,
                            telemetry=Telemetry.metrics_only())
            handle.run_cycles(48)
            observed[backend] = (
                np.asarray(handle.fire_counts()).tolist(),
                np.asarray(handle.accept_counts()).tolist(),
                np.asarray(handle.stop_assertion_counts()).tolist(),
                np.asarray(handle.void_stop_counts()).tolist(),
                handle.metrics_snapshots(),
            )
        for backend in BACKENDS[1:]:
            assert observed[backend] == observed["scalar"], \
                (backend, graph.name, variant.name)


class TestMetricsParity:
    """metrics_snapshots() must be engine-independent, per instance."""

    @pytest.mark.parametrize("graph", _graph_matrix(),
                             ids=lambda g: g.name)
    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: v.name.lower())
    def test_snapshots_identical_through_select(self, graph, variant):
        combos = _scripts_for(graph)
        sink_patterns = [sk for sk, _so in combos]
        source_patterns = [so for _sk, so in combos]
        snapshots = {}
        for backend in BACKENDS:
            handle = select(graph, variant,
                            sink_patterns=sink_patterns,
                            source_patterns=source_patterns,
                            backend=backend,
                            telemetry=Telemetry.metrics_only())
            handle.run_cycles(80)
            snapshots[backend] = handle.metrics_snapshots()
        for backend in BACKENDS[1:]:
            assert snapshots[backend] == snapshots["scalar"], \
                (backend, graph.name)

    def test_snapshot_without_telemetry_keeps_core_counters(self):
        """Even uninstrumented runs expose the cheap counters."""
        sim = SkeletonSim(figure1())
        for _ in range(30):
            sim.step()
        snapshot = sim.metrics_snapshot()
        assert snapshot["skeleton/cycles"]["value"] == 30
        assert any(key.startswith("skeleton/shell/") for key in snapshot)
        # Per-channel stalls and occupancy histograms need telemetry.
        assert not any(key.startswith("skeleton/channel/")
                       for key in snapshot)

    def test_instrumented_snapshot_has_channel_and_relay_metrics(self):
        sim = SkeletonSim(figure1(), telemetry=Telemetry.metrics_only(),
                          sink_patterns={"out": (False, False, True)})
        for _ in range(30):
            sim.step()
        snapshot = sim.metrics_snapshot()
        stalls = {k: v for k, v in snapshot.items()
                  if k.startswith("skeleton/channel/")}
        hists = {k: v for k, v in snapshot.items()
                 if k.startswith("skeleton/relay/")}
        assert stalls and hists
        assert sum(v["value"] for v in stalls.values()) > 0
        for hist in hists.values():
            assert hist["type"] == "histogram"
            assert hist["total"] == 30


class TestInjectCampaignParity:
    """Batched fault campaigns must classify identically per backend."""

    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: v.name.lower())
    def test_skeleton_campaign_backend_parity(self, variant):
        from repro.inject import skeleton_campaign

        graph = figure2()
        kwargs = dict(variant=variant, classes=("stop", "void"),
                      cycles=64, samples=24, seed=11)
        reports = {backend: skeleton_campaign(graph, backend=backend,
                                              **kwargs)
                   for backend in BACKENDS}
        assert reports["scalar"].backend == "scalar"
        assert reports["vectorized"].backend == "vectorized"
        assert reports["bitsim"].backend == "bitsim"
        assert reports["codegen"].backend == "codegen"
        baseline = reports["scalar"]
        for backend in BACKENDS[1:]:
            report = reports[backend]
            assert ([(r.spec.label(), r.verdict)
                     for r in report.results]
                    == [(r.spec.label(), r.verdict)
                        for r in baseline.results]), backend
            assert report.skipped == baseline.skipped, backend
            # Schema v2: the backend lives in the execution header, so
            # the default payload — and therefore the JSON bytes — is
            # identical across backends.
            assert report.to_payload() == baseline.to_payload(), backend
            assert report.to_json() == baseline.to_json(), backend

    def test_execution_header_carries_backend(self):
        from repro.inject import skeleton_campaign

        report = skeleton_campaign(figure2(), cycles=64, samples=8,
                                   seed=3, backend="bitsim")
        payload = report.to_payload(execution=True)
        assert payload["execution"]["backend"] == "bitsim"
        assert "backend" not in report.to_payload()

    def test_engines_model_the_fault_at_different_points(self):
        """The two engines express the *same spec* at different points,
        and the split is part of the contract: the LID engine forces
        the wire after settle (the sink's own behaviour is untouched,
        so a stuck stop makes it re-read the held token — duplication),
        while the skeleton perturbs the sink's script itself (producer
        and consumer coherently stop — back-pressure wedges the ring).
        A no-op fault must be masked identically on both."""
        from repro.inject import (
            FaultSpec,
            run_campaign,
            skeleton_campaign,
        )

        graph = figure2()
        faults = [FaultSpec("stop-stuck-1", "S0->out#5", 8, 0),
                  FaultSpec("stop-stuck-0", "S0->out#5", 8, 0)]
        kwargs = dict(variant=ProtocolVariant.CASU, cycles=64,
                      faults=faults)
        lid = run_campaign(graph, monitors=False, **kwargs)
        skel = skeleton_campaign(graph, backend="vectorized", **kwargs)
        lid_verdicts = {r.spec.label(): r.verdict for r in lid.results}
        skel_verdicts = {r.spec.label(): r.verdict
                         for r in skel.results}
        assert set(lid_verdicts) == set(skel_verdicts)
        stuck1 = "stop-stuck-1@S0->out#5@c8stuck"
        stuck0 = "stop-stuck-0@S0->out#5@c8stuck"
        assert lid_verdicts[stuck1] == "silent-corruption"
        assert skel_verdicts[stuck1] == "deadlock"
        assert lid_verdicts[stuck0] == skel_verdicts[stuck0] == "masked"

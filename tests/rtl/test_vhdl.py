"""Tests for the VHDL emitter."""

import pytest

from repro.rtl import (
    Netlist,
    emit_vhdl,
    full_relay_station_netlist,
    half_relay_station_netlist,
    identity_shell_netlist,
    write_vhdl,
)


@pytest.fixture
def rs_vhdl():
    return emit_vhdl(full_relay_station_netlist(width=8))


class TestStructure:
    def test_entity_declared(self, rs_vhdl):
        assert "entity relay_station is" in rs_vhdl
        assert "end entity relay_station;" in rs_vhdl

    def test_architecture_declared(self, rs_vhdl):
        assert "architecture rtl of relay_station is" in rs_vhdl
        assert "end architecture rtl;" in rs_vhdl

    def test_clock_and_reset_ports(self, rs_vhdl):
        assert "clk : in std_logic" in rs_vhdl
        assert "rst : in std_logic" in rs_vhdl

    def test_data_ports_are_vectors(self, rs_vhdl):
        assert "in_data : in unsigned(7 downto 0)" in rs_vhdl
        assert "out_data : out unsigned(7 downto 0)" in rs_vhdl

    def test_control_ports_are_scalars(self, rs_vhdl):
        assert "stop_in : in std_logic" in rs_vhdl
        assert "stop_out : out std_logic" in rs_vhdl

    def test_registers_in_clocked_process(self, rs_vhdl):
        assert "rising_edge(clk)" in rs_vhdl
        assert "process (clk)" in rs_vhdl

    def test_reset_initializes_registers(self, rs_vhdl):
        assert "if rst = '1' then" in rs_vhdl
        assert "to_unsigned(0, 8)" in rs_vhdl

    def test_combinational_statements_present(self, rs_vhdl):
        assert " and " in rs_vhdl
        assert "not " in rs_vhdl


class TestOtherBlocks:
    def test_half_station_emits(self):
        text = emit_vhdl(half_relay_station_netlist(width=4))
        assert "entity half_relay_station" in text

    def test_shell_emits(self):
        text = emit_vhdl(identity_shell_netlist())
        assert "entity identity_shell" in text
        assert "when" in text  # the output mux

    def test_mux_statement(self):
        nl = Netlist("m")
        nl.add_input("a", 4)
        nl.add_input("b", 4)
        nl.add_input("sel")
        nl.add_output("y", 4)
        nl.cell("MUX2", "u", a="a", b="b", sel="sel", y="y", width=4)
        text = emit_vhdl(nl)
        assert "y <= b when sel = '1' else a;" in text

    def test_write_vhdl(self, tmp_path):
        path = tmp_path / "rs.vhd"
        write_vhdl(full_relay_station_netlist(4), str(path))
        assert path.read_text().startswith("library ieee;")

    def test_validates_before_emitting(self):
        nl = Netlist("bad")
        nl.net("floating")
        with pytest.raises(Exception):
            emit_vhdl(nl)

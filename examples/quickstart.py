#!/usr/bin/env python3
"""Quickstart: wrap modules in shells, connect them over slow wires,
and watch the protocol keep the computation correct.

The scenario is the paper's premise: a design that worked with
zero-delay connections must now cross interconnect that takes several
clock cycles.  We wrap each module in a shell, put relay stations on
the long wires, and verify that the stream of results is exactly what
the ideal zero-latency system would have produced.

Run:  python examples/quickstart.py
"""

from repro import LidSystem, pearls
from repro.lid.reference import is_prefix


def main() -> None:
    # A tiny datapath: numbers flow into an accumulator, whose running
    # sums are doubled by a scaler before reaching the output.
    system = LidSystem("quickstart")
    source = system.add_source("stimulus")            # 0, 1, 2, 3, ...
    acc = system.add_shell("accumulate", pearls.Accumulator())
    scale = system.add_shell("double", pearls.Scaler(gain=2))
    sink = system.add_sink("result")

    # The accumulator sits next to the source; the scaler is far away:
    # the wire between them needs THREE clock cycles, i.e. three relay
    # stations.  The scaler-to-output wire needs one.
    system.connect(source, acc, consumer_port="a")
    system.connect(acc, scale, consumer_port="a", relays=3)
    system.connect(scale, sink, relays=1)

    cycles = 30
    system.run(cycles)

    print("LID output stream: ", sink.payloads)
    reference = system.reference_outputs(cycles)["result"]
    print("ideal (zero-delay):", reference[: len(sink.payloads) + 3], "...")
    assert is_prefix(sink.payloads, reference), "latency equivalence broken!"
    print()
    print(f"latency equivalence holds over {cycles} cycles: the slow "
          f"wires delayed results but never corrupted or reordered them.")
    print(f"steady throughput: {sink.steady_throughput(8, cycles):.2f} "
          f"results/cycle (feed-forward pipelines run at full speed)")
    print(f"shell firings: accumulate={acc.fire_count}, "
          f"double={scale.fire_count}")


if __name__ == "__main__":
    main()

"""Experiment runner: regenerates every paper artifact as a text table.

Each ``run_*`` function reproduces one experiment from DESIGN.md §5 and
returns ``(table_text, rows)``; ``run_all`` executes the whole campaign
(this is what ``repro-lid reproduce`` and the EXPERIMENTS.md refresh
use).  The pytest-benchmark files in ``benchmarks/`` wrap these same
functions for timing.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Dict, List, Sequence, Tuple

from ..analysis import (
    analyze_reconvergence,
    first_full_speed_cycle,
    longest_register_path,
    min_cycle_ratio_throughput,
)
from ..graph import equalize, figure1, imbalance, promote_half_relays
from ..lid.variant import ProtocolVariant
from ..skeleton import (
    SkeletonSim,
    check_deadlock,
    compare_cost,
    system_throughput,
    transient_and_period,
    transient_bound,
)
from . import workloads
from .tables import format_table

Rows = List[Sequence[Any]]


def run_figure1(cycles: int = 40) -> Tuple[str, Rows]:
    """EXP-F1: the cycle-by-cycle evolution of the paper's Figure 1."""
    graph = workloads.figure1_workload()
    sim = SkeletonSim(graph)
    rows: Rows = []
    out_idx = sim.sink_names.index("out")
    shell_idx = {name: i for i, name in enumerate(sim.shell_names)}
    for cycle in range(cycles):
        valid = sim._forward_valids()
        out_hop = sim.sink_in_hop[out_idx]
        out_symbol = "N" if not valid[out_hop] else "d"
        fires, _accepts = sim.step()
        rows.append((
            cycle,
            *(int(fires[shell_idx[n]]) for n in ("A", "B0", "C")),
            out_symbol,
        ))
    result_sim = SkeletonSim(graph)
    result = result_sim.run()
    throughput = result.throughput("out")
    i, m, predicted = analyze_reconvergence(graph, "A", "C")
    table = format_table(
        ("cycle", "A fires", "B fires", "C fires", "out"),
        rows,
        title=(
            f"Figure 1 evolution: i={i}, m={m}, predicted T={predicted}, "
            f"simulated T={throughput}, period={result.period}"
        ),
    )

    # Token-level trace, matching the figure's rendering: the paper
    # draws consecutive token indices flowing through A, B and C, with
    # "N"s for voids.  A forwarding join makes the indices visible.
    from ..graph.topologies import reconvergent
    from ..pearls.base import FunctionPearl

    token_graph = reconvergent(
        join_factory=lambda: FunctionPearl(
            lambda a, b: a, inputs=("a", "b"), initial=0))
    system = token_graph.elaborate()
    system.finalize()
    watch = []
    for channel in system.channels:
        if channel.producer in ("A", "B0", "C") \
                and channel.consumer != "out":
            watch.append(channel)
    watch.append(next(c for c in system.channels
                      if c.consumer == "out"))
    trace = system.trace_channels(watch)
    system.run(min(cycles, 24))
    token_rows: Rows = []
    for cycle in trace.cycles:
        row = trace.row(cycle)
        cells = []
        for channel in watch:
            valid = row[channel.valid.name]
            cells.append(str(row[channel.data.name]) if valid else "N")
        token_rows.append((cycle, *cells))
    labels = [channel.name.split("#")[0] for channel in watch]
    token_table = format_table(
        ("cycle", *labels),
        token_rows,
        title="Figure 1 token flow (paper rendering: indices and N's)",
    )
    return table + "\n\n" + token_table, rows


def run_figure2(max_relays: int = 4,
                evolution_cycles: int = 12) -> Tuple[str, Rows]:
    """EXP-F2: the Figure 2 feedback loop.

    Regenerates both the figure's cycle-by-cycle evolution (the valid
    tokens circulating between shells A and B) and the S/(S+R) sweep.
    """
    # Evolution of the figure's own instance (S=2, R=2).
    graph = workloads.figure2_workload(1)
    sim = SkeletonSim(graph)
    evolution: Rows = []
    for cycle in range(evolution_cycles):
        a_out = "d" if sim.shell_reg[0] else "N"
        b_out = "d" if sim.shell_reg[1] else "N"
        stations = "".join("d" if m else "N" for m in sim.rs_main)
        fires, _accepts = sim.step()
        evolution.append((cycle, a_out, stations[0], b_out, stations[1],
                          int(fires[0]), int(fires[1])))
    evo_table = format_table(
        ("cycle", "A.out", "rs(A->B)", "B.out", "rs(B->A)",
         "A fires", "B fires"),
        evolution,
        title="Figure 2 evolution (S=2, R=2): two tokens chase each "
              "other around four positions -> T = 1/2",
    )

    rows: Rows = []
    for relays_per_arc in range(1, max_relays + 1):
        graph = workloads.figure2_workload(relays_per_arc)
        shells, total_relays = 2, 2 * relays_per_arc
        predicted = Fraction(shells, shells + total_relays)
        measured = system_throughput(graph)
        transient, period = transient_and_period(graph)
        rows.append((shells, total_relays, str(predicted), str(measured),
                     predicted == measured, transient, period))
    sweep_table = format_table(
        ("S", "R", "S/(S+R)", "simulated", "match", "transient", "period"),
        rows,
        title="Figure 2: feedback-loop throughput",
    )
    return evo_table + "\n\n" + sweep_table, rows


def run_tree() -> Tuple[str, Rows]:
    """EXP-T1: trees reach T=1 after a transient <= longest path."""
    rows: Rows = []
    for depth, relays, graph in workloads.tree_sweep():
        measured = system_throughput(graph)
        longest = longest_register_path(graph)
        full_speed = first_full_speed_cycle(graph)
        rows.append((graph.name, depth, relays, str(measured),
                     full_speed, longest, full_speed <= longest))
    table = format_table(
        ("tree", "depth", "rs/hop", "throughput", "full-speed@",
         "longest path", "within bound"),
        rows,
        title="Trees: T=1, initial latency bounded by the longest path",
    )
    return table, rows


def run_reconvergent() -> Tuple[str, Rows]:
    """EXP-T2: the (m-i)/m formula across imbalances."""
    rows: Rows = []
    for i, m, graph in workloads.reconvergent_sweep():
        predicted = Fraction(m - i, m)
        measured = system_throughput(graph)
        mcr = min_cycle_ratio_throughput(graph).throughput
        rows.append((graph.name, i, m, str(predicted), str(mcr),
                     str(measured), predicted == measured == mcr))
    table = format_table(
        ("system", "i", "m", "(m-i)/m", "mcr", "simulated", "agree"),
        rows,
        title="Reconvergent feed-forward: T=(m-i)/m",
    )
    return table, rows


def run_equalization() -> Tuple[str, Rows]:
    """EXP-T3: path equalization restores T=1."""
    rows: Rows = []
    for i, m, graph in workloads.reconvergent_sweep():
        before = system_throughput(graph)
        balanced = equalize(graph)
        spare = imbalance(graph)
        after = system_throughput(balanced)
        rows.append((graph.name, str(before), spare, str(after),
                     after == Fraction(1)))
    table = format_table(
        ("system", "before", "spare RS added", "after", "reaches 1"),
        rows,
        title="Path equalization",
    )
    return table, rows


def run_loop_formula() -> Tuple[str, Rows]:
    """EXP-T4: the S/(S+R) sweep."""
    rows: Rows = []
    for shells, relays, graph in workloads.ring_sweep():
        predicted = Fraction(shells, shells + relays)
        measured = system_throughput(graph)
        rows.append((graph.name, shells, relays, str(predicted),
                     str(measured), predicted == measured))
    table = format_table(
        ("system", "S", "R", "S/(S+R)", "simulated", "match"),
        rows,
        title="Feedback loops: T=S/(S+R)",
    )
    return table, rows


def run_composition() -> Tuple[str, Rows]:
    """EXP-T5: slowest sub-topology dominates, without equalization."""
    rows: Rows = []
    for label, graph in workloads.composition_cases():
        mcr = min_cycle_ratio_throughput(graph)
        measured = system_throughput(graph)
        rows.append((label, str(mcr.throughput), str(measured),
                     mcr.throughput == measured))
    table = format_table(
        ("composition", "slowest sub-topology (mcr)", "simulated", "match"),
        rows,
        title="Composed topologies: the slowest loop sets the pace",
    )
    return table, rows


def run_variant_speedup(cycles: int = 200) -> Tuple[str, Rows]:
    """EXP-T6: tokens delivered, refined vs original protocol."""
    from ..graph import pipeline, reconvergent

    scenarios: List[Tuple[str, Any, Dict, Dict]] = []
    bp = {"out": workloads.SINK_PATTERNS["heavy"]}
    gap = {"src": workloads.SOURCE_PATTERNS["gappy"]}
    g1 = reconvergent(long_relays=(2, 1), short_relays=1)
    scenarios.append(("reconvergent + bursty source + back pressure",
                      g1, gap, bp))
    g2 = pipeline(3, relays_per_hop=1)
    for edge in g2.edges:
        if edge.relays:
            edge.relays = ("half",) * len(edge.relays)
    scenarios.append(("half-RS pipeline + back pressure", g2, {}, bp))
    g3 = workloads.figure1_workload()
    scenarios.append(("figure 1 + back pressure", g3, {},
                      {"out": workloads.SINK_PATTERNS["light"]}))

    rows: Rows = []
    for label, graph, sources, sinks in scenarios:
        counts = {}
        for variant in (ProtocolVariant.CARLONI, ProtocolVariant.CASU):
            sim = SkeletonSim(graph, variant=variant,
                              source_patterns=sources, sink_patterns=sinks,
                              detect_ambiguity=False)
            total = 0
            for _ in range(cycles):
                _fires, accepts = sim.step()
                total += sum(accepts)
            counts[variant] = total
        carloni = counts[ProtocolVariant.CARLONI]
        casu = counts[ProtocolVariant.CASU]
        speedup = casu / carloni if carloni else float("inf")
        rows.append((label, carloni, casu, f"{speedup:.2f}x"))
    table = format_table(
        ("scenario", "original (tokens)", "refined (tokens)", "speedup"),
        rows,
        title=f"Protocol variant: tokens delivered in {cycles} cycles",
    )

    # Steady-state divergence (a reproduction finding): on multi-level
    # reconvergence the imbalance regenerates voids every period and
    # the original discipline keeps re-freezing them, so the ASYMPTOTIC
    # rates differ — no scripts involved.
    from ..graph import random_dag

    steady_rows: Rows = []
    witness = random_dag(22, shells=5)
    for variant in (ProtocolVariant.CARLONI, ProtocolVariant.CASU):
        rate = system_throughput(witness, variant=variant)
        steady_rows.append((witness.name, str(variant), str(rate)))
    steady_table = format_table(
        ("system", "variant", "steady-state throughput"),
        steady_rows,
        title="Steady-state divergence on multi-level reconvergence "
              "(no back-pressure scripts; the speedup can be "
              "asymptotic)",
    )
    return table + "\n\n" + steady_table, rows


def run_stop_locality(cycles: int = 300) -> Tuple[str, Rows]:
    """EXP-T7: stop-wire activity, refined vs original protocol.

    The paper claims the refinement ensures "higher locality of
    management of void/stop signals": stop waves stay near their cause
    instead of spreading over void channels.  We count asserted stop
    wires per cycle (and the fraction landing on voids) on identical
    workloads.
    """
    from ..graph import pipeline, reconvergent, tree

    bp = {"out": workloads.SINK_PATTERNS["heavy"]}
    gap = {"src": workloads.SOURCE_PATTERNS["gappy"]}
    scenarios = [
        ("figure 1 + back pressure", workloads.figure1_workload(),
         gap, bp),
        ("tree d3 + back pressure", tree(3), None, bp),
        ("deep pipeline + back pressure",
         pipeline(4, relays_per_hop=2), gap, bp),
        ("reconvergent + back pressure",
         reconvergent(long_relays=(2, 1), short_relays=1), gap, bp),
    ]
    rows: Rows = []
    for label, graph, sources, sinks in scenarios:
        stats = {}
        for variant in (ProtocolVariant.CARLONI, ProtocolVariant.CASU):
            if sinks and "out" not in {n.name for n in graph.sinks()}:
                sinks = {graph.sinks()[0].name: list(sinks.values())[0]}
            sim = SkeletonSim(graph, variant=variant,
                              source_patterns=sources,
                              sink_patterns=sinks,
                              detect_ambiguity=False)
            for _ in range(cycles):
                sim.step()
            stats[variant] = (sim.stop_assertions_total,
                              sim.internal_stops_on_voids_total)
        old_total, old_void = stats[ProtocolVariant.CARLONI]
        new_total, new_void = stats[ProtocolVariant.CASU]
        rows.append((label, old_total, old_void, new_total, new_void))
    table = format_table(
        ("scenario", "original stops", "...on voids (internal)",
         "refined stops", "...on voids (internal)"),
        rows,
        title=f"Stop-wire activity over {cycles} cycles "
              f"(locality of void/stop management; internal = "
              f"protocol-generated, excluding scripted sink stops)",
    )
    return table, rows


def run_verification() -> Tuple[str, Rows]:
    """EXP-V1: the safety-property table."""
    from ..verify import results_table, verify_all

    results = verify_all()
    rows: Rows = [
        (r.block, r.prop, "PASS" if r.holds else "FAIL", r.states_explored)
        for r in results
    ]
    return results_table(results), rows


def run_deadlock_study() -> Tuple[str, Rows]:
    """EXP-D1: liveness by topology class, both protocol variants."""
    rows: Rows = []
    for family, expectation, graph in workloads.deadlock_suite():
        for variant in (ProtocolVariant.CASU, ProtocolVariant.CARLONI):
            verdict = check_deadlock(graph, variant=variant)
            status = ("deadlock" if verdict.deadlocked
                      else "potential" if verdict.potential else "live")
            rows.append((graph.name, family, str(variant), expectation,
                         status))
    table = format_table(
        ("system", "class", "variant", "static class", "skeleton verdict"),
        rows,
        title="Deadlock study (simulate to transient extinction)",
    )
    return table, rows


def run_skeleton_cost(cycles: int = 1500) -> Tuple[str, Rows]:
    """EXP-D2: skeleton-vs-full simulation cost."""
    rows: Rows = []
    for graph in workloads.pipeline_scaling():
        comparison = compare_cost(graph, cycles=cycles)
        rows.append((
            graph.name,
            cycles,
            f"{comparison.skeleton_seconds * 1e3:.1f} ms",
            f"{comparison.full_seconds * 1e3:.1f} ms",
            f"{comparison.speedup:.1f}x",
        ))
    table = format_table(
        ("system", "cycles", "skeleton", "full sim", "skeleton speedup"),
        rows,
        title="Skeleton simulation cost (paper: 'absolutely negligible')",
    )
    return table, rows


def run_transients() -> Tuple[str, Rows]:
    """EXP-D3: measured transients vs the predicted-upfront figures."""
    from ..skeleton import transient_estimate

    rows: Rows = []
    graphs = [g for _d, _r, g in workloads.tree_sweep()]
    graphs += [g for _s, _r, g in workloads.ring_sweep()[:6]]
    graphs += [g for _i, _m, g in workloads.reconvergent_sweep()[:4]]
    for graph in graphs:
        transient, period = transient_and_period(graph)
        estimate = transient_estimate(graph)
        bound = transient_bound(graph)
        rows.append((graph.name, transient, period, estimate, bound,
                     transient <= estimate <= bound))
    table = format_table(
        ("system", "transient", "period", "linear estimate",
         "quadratic bound", "ordered"),
        rows,
        title="Transient lengths: measured vs predicted-upfront "
              "(linear estimate, conservative quadratic bound)",
    )
    return table, rows


def run_exhaustive_liveness() -> Tuple[str, Rows]:
    """EXP-D1b: liveness proved over all environments (extension)."""
    from ..graph import figure1, figure2, pipeline, ring, self_loop
    from ..verify import verify_system_liveness

    cases = [
        ("pipeline3", pipeline(3)),
        ("figure1", figure1()),
        ("figure2", figure2()),
        ("ring3", ring(3, relays_per_arc=1)),
        ("self_loop", self_loop(relays=2)),
        ("ring_half_full", ring(2, relays_per_arc=[["half"], ["full"]])),
        ("ring_all_half", ring(2, relays_per_arc=[["half"], ["half"]])),
    ]
    rows: Rows = []
    for name, graph in cases:
        for variant in (ProtocolVariant.CASU, ProtocolVariant.CARLONI):
            result = verify_system_liveness(graph, variant=variant)
            rows.append((
                name, str(variant),
                "LIVE (proved)" if result.live else "STUCK STATE",
                result.reachable_states,
                result.ambiguous_states,
            ))
    table = format_table(
        ("system", "variant", "verdict", "states", "ambiguous"),
        rows,
        title="Exhaustive liveness over all environments "
              "(ambiguous = reachable states with multiple stop "
              "fixpoints: the paper's 'potential deadlock')",
    )
    return table, rows


def run_cure() -> Tuple[str, Rows]:
    """EXP-C1: curing hazardous systems by promoting half relays."""
    rows: Rows = []
    for family, expectation, graph in workloads.deadlock_suite():
        if expectation != "hazard":
            continue
        before = check_deadlock(graph, variant=ProtocolVariant.CARLONI)
        cured = promote_half_relays(graph, only_loops=True)
        after = check_deadlock(cured, variant=ProtocolVariant.CARLONI)
        promoted = (graph.relay_count("half")
                    - cured.relay_count("half"))
        rows.append((
            graph.name,
            "deadlock" if before.deadlocked else "potential"
            if before.potential else "live",
            promoted,
            "deadlock" if after.deadlocked else "potential"
            if after.potential else "live",
        ))
    table = format_table(
        ("system", "before", "half RS promoted", "after"),
        rows,
        title="Cure: substituting few relay stations (half -> full)",
    )
    return table, rows


def run_memory_placement(cycles: int = 200) -> Tuple[str, Rows]:
    """EXP-A1: the memory-placement ablation (extension)."""
    from .. import LidSystem
    from ..pearls.arithmetic import Identity
    from ..rtl import full_relay_station_netlist, half_relay_station_netlist

    def build(style: str, stages: int = 3):
        system = LidSystem(style)
        src = system.add_source("src")
        shells = []
        for index in range(stages):
            pearl = Identity(initial=-1 - index)
            if style == "queued":
                shells.append(system.add_queued_shell(f"S{index}", pearl))
            else:
                shells.append(system.add_shell(f"S{index}", pearl))
        sink = system.add_sink("out", stop_script=lambda c: c % 4 == 1)
        system.connect(src, shells[0])
        for a, b in zip(shells, shells[1:]):
            if style == "full-rs":
                system.connect(a, b, relays=1)
            elif style == "half-rs":
                system.connect(a, b, relays=["half"])
            else:
                system.connect(a, b)
        system.connect(shells[-1], sink)
        return system, sink

    def fabric_bits(style: str, stages: int = 3, width: int = 8) -> int:
        hops = stages - 1
        if style == "full-rs":
            return hops * full_relay_station_netlist(
                width).register_count()
        if style == "half-rs":
            return hops * half_relay_station_netlist(
                width).register_count()
        return hops * (2 * width + 3)

    rows: Rows = []
    for style in ("full-rs", "half-rs", "queued"):
        system, sink = build(style)
        system.run(cycles)
        rows.append((style, fabric_bits(style),
                     f"{sink.steady_throughput(20, cycles):.3f}",
                     len(sink.payloads)))
    table = format_table(
        ("fabric style", "register bits (fabric)", "throughput",
         f"tokens in {cycles} cycles"),
        rows,
        title="Memory placement ablation: relay stations vs shell "
              "queues (sink stops 1 in 4)",
    )
    return table, rows


def run_floorplan() -> Tuple[str, Rows]:
    """EXP-A2: floorplan-driven relay insertion (extension)."""
    from ..graph import Placement, apply_floorplan, figure2

    rows: Rows = []
    graph = figure2()
    for distance in (1, 2, 4, 8):
        placement = Placement({
            "S0": (0, 0), "S1": (distance, 0), "out": (distance + 1, 0),
        })
        report = apply_floorplan(graph, placement, reach=1.0)
        rows.append((distance, report.graph.relay_count(),
                     str(report.throughput)))
    table = format_table(
        ("loop span (grid units)", "relay stations", "throughput"),
        rows,
        title="Floorplanning a feedback loop: S/(S+R) prices every "
              "unit of wire",
    )
    return table, rows


#: Experiment registry: id -> (description, runner).
EXPERIMENTS: Dict[str, Tuple[str, Callable[[], Tuple[str, Rows]]]] = {
    "EXP-F1": ("Figure 1 feed-forward evolution", run_figure1),
    "EXP-F2": ("Figure 2 feedback evolution", run_figure2),
    "EXP-T1": ("Tree throughput and transient", run_tree),
    "EXP-T2": ("Reconvergent formula (m-i)/m", run_reconvergent),
    "EXP-T3": ("Path equalization", run_equalization),
    "EXP-T4": ("Loop formula S/(S+R)", run_loop_formula),
    "EXP-T5": ("Composition: slowest wins", run_composition),
    "EXP-T6": ("Variant speedup", run_variant_speedup),
    "EXP-T7": ("Stop/void locality", run_stop_locality),
    "EXP-V1": ("Safety verification", run_verification),
    "EXP-D1": ("Deadlock study", run_deadlock_study),
    "EXP-D1b": ("Exhaustive liveness (extension)",
                run_exhaustive_liveness),
    "EXP-D2": ("Skeleton cost", run_skeleton_cost),
    "EXP-D3": ("Transient prediction", run_transients),
    "EXP-C1": ("Deadlock cure", run_cure),
    "EXP-A1": ("Memory placement ablation (extension)",
               run_memory_placement),
    "EXP-A2": ("Floorplan-driven relay insertion (extension)",
               run_floorplan),
}


def run_all() -> str:
    """Run the entire campaign; returns the concatenated tables."""
    chunks: List[str] = []
    for exp_id, (description, runner) in EXPERIMENTS.items():
        table, _rows = runner()
        chunks.append(f"[{exp_id}] {description}\n\n{table}\n")
    return "\n".join(chunks)


#: Version tag stamped into every machine-readable bench record.
BENCH_RECORD_SCHEMA = "repro-bench-record/v1"


def git_rev() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    import os
    import subprocess

    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)))
        rev = proc.stdout.strip()
        return rev if proc.returncode == 0 and rev else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def experiment_record(
    exp_id: str,
    *,
    wall_seconds: float = None,
    rows: Rows = None,
    params: Dict[str, Any] = None,
    counters: Dict[str, Any] = None,
) -> Dict[str, Any]:
    """Machine-readable record for one experiment run.

    The schema is the contract for ``BENCH_*.json`` files written next
    to the text tables: bench id, free-form parameters, wall time,
    counters and the git revision that produced them.
    """
    merged_counters: Dict[str, Any] = dict(counters or {})
    if rows is not None:
        merged_counters.setdefault("rows", len(rows))
    description = ""
    if exp_id in EXPERIMENTS:
        description = EXPERIMENTS[exp_id][0]
    return {
        "schema": BENCH_RECORD_SCHEMA,
        "bench": exp_id,
        "description": description,
        "params": dict(params or {}),
        "wall_seconds": wall_seconds,
        "counters": merged_counters,
        "git_rev": git_rev(),
    }


def _atomic_write_text(path: str, text: str) -> None:
    """Write *text* to *path* atomically (temp file + ``os.replace``).

    A reader — a dashboard polling a campaign directory, a CI artifact
    collector — either sees the previous complete file or the new
    complete file, never a truncated record, even if the writer dies
    mid-write.
    """
    import os
    import tempfile

    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def write_record(directory: str, record: Dict[str, Any]) -> str:
    """Write one ``BENCH_<id>.json`` record atomically; returns the path."""
    import json
    import os

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{record['bench']}.json")
    _atomic_write_text(
        path, json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def read_records(directory: str) -> List[Dict[str, Any]]:
    """Load every ``BENCH_*.json`` record in *directory*, sorted by id.

    Unparsable or wrong-schema files are skipped with a warning on
    stderr rather than aborting the whole read: one corrupt record (a
    partial write from a crashed run predating atomic writes, a stray
    file) must not take down a dashboard aggregating hundreds.
    """
    import glob
    import json
    import os
    import sys

    records: List[Dict[str, Any]] = []
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"warning: skipping unreadable bench record {path}: "
                  f"{exc}", file=sys.stderr)
            continue
        if not isinstance(record, dict) \
                or record.get("schema") != BENCH_RECORD_SCHEMA:
            print(f"warning: skipping {path}: not a "
                  f"{BENCH_RECORD_SCHEMA} record", file=sys.stderr)
            continue
        records.append(record)
    return records


def _run_experiment(exp_id: str) -> Tuple[str, str, list, float]:
    """Run one registered experiment; module-level so workers only
    need the experiment id (the registry is re-imported per process)."""
    from time import perf_counter

    _description, runner = EXPERIMENTS[exp_id]
    started = perf_counter()
    table, rows = runner()
    return exp_id, table, rows, perf_counter() - started


def write_results(directory: str, jobs: int = 1, *,
                  ledger: str = None, progress=None) -> List[str]:
    """Run every experiment, writing one table file per id.

    Each experiment also gets a machine-readable ``BENCH_<id>.json``
    sibling (schema :data:`BENCH_RECORD_SCHEMA`).  Returns the paths
    written.  This is what ``repro-lid reproduce --output DIR`` uses;
    the text files match the format of the pinned golden campaign
    (``tests/golden/campaign.txt``).

    ``jobs > 1`` fans independent experiments across worker processes;
    files are still written in registry order by this process, so the
    tables and rows are identical to a serial run (wall times in the
    JSON records are measured per experiment and vary either way).

    *ledger* appends one ``repro-obs-ledger/v1`` record per experiment
    to that JSONL path (kind ``bench``, row count in the verdict, wall
    time in the non-canonical meta); *progress* (a
    :class:`repro.obs.ProgressReporter`) tracks experiment completion.
    """
    import os

    from ..exec import map_deterministic

    os.makedirs(directory, exist_ok=True)
    experiment_ids = list(EXPERIMENTS)
    if progress is not None:
        progress.set_total(len(experiment_ids))
    outcomes = map_deterministic(
        _run_experiment, experiment_ids, jobs=jobs, progress=progress)
    if progress is not None:
        progress.finish()
    paths: List[str] = []
    for exp_id, table, rows, wall in outcomes:
        description = EXPERIMENTS[exp_id][0]
        path = os.path.join(directory, f"{exp_id}.txt")
        _atomic_write_text(path, f"[{exp_id}] {description}\n\n{table}\n")
        paths.append(path)
        record = experiment_record(exp_id, wall_seconds=wall, rows=rows)
        paths.append(write_record(directory, record))
        if ledger:
            from ..obs import append_record, make_record

            append_record(ledger, make_record(
                "bench",
                params={"experiment": exp_id},
                verdict={"rows": len(rows)},
                meta={"wall_seconds": wall, "jobs": jobs,
                      "directory": directory}))
    return paths

"""Property-based tests for the compiled (codegen) skeleton engine.

Random topologies, scripts, variants and fixpoints, locked step by
step against the scalar reference — the fuzzing layer above the fixed
conformance matrix in ``tests/skeleton/test_backend_conformance.py``.
Both compiled entry points are exercised: per-cycle ``step()`` and the
batched ``run_cycles()`` (state held in locals across the batch).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.lid.variant import ProtocolVariant
from repro.skeleton import CodegenSkeletonSim, SkeletonSim

pytestmark = pytest.mark.slow

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

stop_patterns = st.lists(st.booleans(), min_size=1, max_size=5).map(tuple)
source_patterns = st.lists(st.booleans(), min_size=1, max_size=4).map(
    lambda bits: tuple(bits) if any(bits) else (True,))


def _random_graph(seed, loopy):
    from repro.graph import random_dag
    from repro.graph.random_gen import random_loopy

    if loopy:
        return random_loopy(seed=seed, shells=3)
    return random_dag(seed, shells=4, half_probability=0.3)


@given(seed=st.integers(0, 5_000), loopy=st.booleans(),
       variant=st.sampled_from(list(ProtocolVariant)),
       fixpoint=st.sampled_from(["least", "greatest"]),
       data=st.data())
@settings(**SETTINGS)
def test_codegen_lockstep_with_scalar_on_random_topologies(
        seed, loopy, variant, fixpoint, data):
    """Per-cycle fires, accepts and full state equal to the reference."""
    graph = _random_graph(seed, loopy)
    sinks = [n.name for n in graph.sinks()]
    sources = [n.name for n in graph.sources()]
    sink_map = {name: data.draw(stop_patterns) for name in sinks}
    source_map = {name: data.draw(source_patterns) for name in sources}
    kwargs = dict(variant=variant, fixpoint=fixpoint,
                  sink_patterns=sink_map, source_patterns=source_map)
    compiled = CodegenSkeletonSim(graph, **kwargs)
    scalar = SkeletonSim(graph, **kwargs)
    for cycle in range(60):
        assert compiled.step() == scalar.step(), cycle
        assert compiled.state() == scalar.state(), cycle
    assert compiled.ambiguous_cycles == scalar.ambiguous_cycles
    assert compiled.stop_assertions_total == scalar.stop_assertions_total
    assert compiled.stops_on_voids_total == scalar.stops_on_voids_total
    assert compiled.internal_stops_on_voids_total \
        == scalar.internal_stops_on_voids_total


@given(seed=st.integers(0, 5_000), loopy=st.booleans(),
       variant=st.sampled_from(list(ProtocolVariant)),
       split=st.integers(0, 60),
       data=st.data())
@settings(**SETTINGS)
def test_batched_run_cycles_matches_stepping(seed, loopy, variant,
                                             split, data):
    """run_cycles(a); run_cycles(b) lands exactly where a+b steps do,
    wherever the batch boundary falls."""
    graph = _random_graph(seed, loopy)
    sinks = [n.name for n in graph.sinks()]
    sources = [n.name for n in graph.sources()]
    sink_map = {name: data.draw(stop_patterns) for name in sinks}
    source_map = {name: data.draw(source_patterns) for name in sources}
    kwargs = dict(variant=variant, sink_patterns=sink_map,
                  source_patterns=source_map)
    batched = CodegenSkeletonSim(graph, **kwargs)
    batched.run_cycles(split)
    batched.run_cycles(60 - split)
    scalar = SkeletonSim(graph, **kwargs)
    for _ in range(60):
        scalar.step()
    assert batched.state() == scalar.state()
    assert batched.fire_history == scalar.fire_history
    assert batched.accept_history == scalar.accept_history
    assert batched.ambiguous_cycles == scalar.ambiguous_cycles

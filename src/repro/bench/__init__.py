"""Benchmark harness: workloads, experiment runners and table rendering."""

from .runner import EXPERIMENTS, run_all
from .tables import format_table

__all__ = ["EXPERIMENTS", "format_table", "run_all"]

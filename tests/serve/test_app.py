"""End-to-end campaign service tests (in-process server, real HTTP).

The load-bearing assertions of the serving PR live here:

* N concurrent identical manifests -> exactly one executed golden run
  (the rest coalesce), all responses byte-identical;
* served bytes == offline ``repro-lid`` CLI bytes for the same work;
* served ledger records carry the same content-addressed ``run_id`` as
  the offline CLI's ``--ledger`` records, and coalesced/cached
  requests do not duplicate records;
* backpressure surfaces as 429 (rate) / 503 (queue depth);
* NDJSON streaming delivers progress events and the identical body.
"""

import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cli import main
from repro.serve import (
    CampaignScheduler,
    ServeOutcome,
    start_in_thread,
)

SMOKE = {"kind": "campaign", "smoke": True, "format": "json"}


@pytest.fixture
def server(tmp_path):
    """Thread-mode server with its own cache dir and ledger."""
    scheduler = CampaignScheduler(
        mode="thread", jobs=2,
        cache_dir=str(tmp_path / "serve-cache"),
        ledger=str(tmp_path / "serve-ledger.jsonl"))
    handle = start_in_thread(scheduler, port=0)
    try:
        yield handle
    finally:
        handle.stop()


def post(handle, body, path="/v1/run", headers=None, timeout=120):
    conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                      timeout=timeout)
    try:
        conn.request("POST", path, body=json.dumps(body),
                     headers=headers or {})
        response = conn.getresponse()
        return (response.status, dict(response.getheaders()),
                response.read())
    finally:
        conn.close()


def get(handle, path):
    conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                      timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def offline_bytes(tmp_path, argv, name="offline.out"):
    """Run the offline CLI and capture the report bytes it writes."""
    out = tmp_path / name
    assert main(argv + ["-o", str(out)]) == 0
    return out.read_bytes()


class TestRoutes:
    def test_healthz(self, server):
        status, body = get(server, "/healthz")
        assert status == 200 and json.loads(body) == {"status": "ok"}

    def test_stats_shape(self, server):
        status, body = get(server, "/v1/stats")
        payload = json.loads(body)
        assert status == 200
        assert payload["schema"] == "repro-lid-serve-stats/v1"
        assert set(payload["serve"]) >= {"requests", "hits",
                                         "coalesced", "executed"}

    def test_unknown_route_404(self, server):
        status, _h, body = post(server, SMOKE, path="/v2/run")
        assert status == 404 and b"error" in body

    def test_get_on_run_405(self, server):
        status, _body = get(server, "/v1/run")
        assert status == 405

    def test_bad_json_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            conn.request("POST", "/v1/run", body=b"{nope")
            response = conn.getresponse()
            assert response.status == 400
            response.read()
        finally:
            conn.close()

    def test_invalid_manifest_400(self, server):
        status, _h, body = post(server, {"kind": "campaign",
                                         "faults": "bogus"})
        assert status == 400
        assert "fault" in json.loads(body)["error"]

    def test_kind_route_aliases(self, server):
        status, headers, body = post(server, {"topology": "feedback"},
                                     path="/v1/deadlock")
        assert status == 200
        assert headers["X-Repro-Exit"] == "0"
        assert body.startswith(b"live:")


class TestCoalescingAndParity:
    def test_concurrent_identical_one_golden_run(self, server,
                                                 tmp_path):
        """The tentpole assertion: K identical concurrent manifests ->
        exactly one execution, byte-identical responses, one ledger
        record."""
        k = 6
        with ThreadPoolExecutor(max_workers=k) as pool:
            results = list(pool.map(lambda _: post(server, SMOKE),
                                    range(k)))
        statuses = {status for status, _h, _b in results}
        bodies = {body for _s, _h, body in results}
        sources = sorted(h["X-Repro-Cache"] for _s, h, _b in results)
        assert statuses == {200}
        assert len(bodies) == 1, "responses must be byte-identical"
        assert sources.count("miss") == 1
        assert sources.count("coalesced") + sources.count("hit") == k - 1

        stats = server.server.scheduler.stats
        assert stats.executed == 1, "exactly one golden simulation"
        assert stats.coalesced + stats.hits == k - 1

        ledger = server.server.scheduler.ledger
        records = [json.loads(line) for line
                   in open(ledger, encoding="utf-8")]
        assert len(records) == 1, "coalesced requests add no records"

        # Byte-identity with the offline CLI for the same manifest.
        offline = offline_bytes(
            tmp_path, ["inject", "--smoke", "--format", "json"])
        assert bodies == {offline}
        # ...and identity-parity: same content-addressed run id.
        run_id = {h["X-Repro-Run-Id"] for _s, h, _b in results}
        assert run_id == {records[0]["run_id"]}

    def test_warm_requests_hit_response_cache(self, server):
        first = post(server, SMOKE)
        second = post(server, SMOKE)
        assert first[1]["X-Repro-Cache"] == "miss"
        assert second[1]["X-Repro-Cache"] == "hit"
        assert first[2] == second[2]
        assert server.server.scheduler.stats.executed == 1

    def test_formats_cached_separately(self, server):
        js = post(server, SMOKE)
        table = post(server, dict(SMOKE, format="table"))
        assert js[2] != table[2]
        assert js[1]["X-Repro-Span"] == table[1]["X-Repro-Span"]
        assert server.server.scheduler.stats.executed == 2

    def test_deadlock_parity_with_cli(self, server, capsys):
        status, headers, body = post(
            server, {"kind": "deadlock", "topology": "feedback"})
        assert main(["deadlock", "feedback"]) == 0
        offline = capsys.readouterr().out
        assert status == 200
        assert body.decode() == offline
        assert headers["X-Repro-Exit"] == "0"

    def test_series_parity_with_cli(self, server, tmp_path, capsys):
        from repro.analysis.sweep import SERIES_GENERATORS

        which = sorted(SERIES_GENERATORS)[0]
        status, _headers, body = post(server, {"kind": "series",
                                               "which": which})
        assert main(["series", which]) == 0
        offline = capsys.readouterr().out
        assert status == 200 and body.decode() == offline


class TestBackpressure:
    def test_rate_limit_429(self, tmp_path):
        scheduler = CampaignScheduler(
            mode="thread", cache_dir=str(tmp_path / "cache"))
        handle = start_in_thread(scheduler, port=0, rate=0.001,
                                 burst=2.0)
        try:
            codes = []
            for _ in range(4):
                status, headers, _body = post(
                    handle, {"kind": "series", "which": "nope"},
                    headers={"X-Repro-Client": "c1"})
                codes.append((status, "Retry-After" in headers))
            # Two tokens spend on (invalid) manifests, then 429s.
            assert codes[:2] == [(400, False), (400, False)]
            assert codes[2:] == [(429, True), (429, True)]
            # A different client has its own bucket.
            status, _h, _b = post(handle,
                                  {"kind": "series", "which": "nope"},
                                  headers={"X-Repro-Client": "c2"})
            assert status == 400
            assert handle.server.scheduler.stats.rejected_rate == 2
        finally:
            handle.stop()

    def test_queue_depth_503_but_followers_pass(self, tmp_path,
                                                monkeypatch):
        """With depth 1 and a slow run in flight: a *distinct* manifest
        is bounced 503, an *identical* one coalesces (it adds no
        work)."""
        from repro.serve import scheduler as scheduler_mod

        release = threading.Event()
        entered = threading.Event()

        def slow_execute(manifest, **kwargs):
            entered.set()
            assert release.wait(30)
            return ServeOutcome(body=b"done\n",
                                content_type="text/plain",
                                exit_code=0,
                                span=f"span-{manifest.seed}")

        monkeypatch.setattr(scheduler_mod, "execute_manifest",
                            slow_execute)
        scheduler = CampaignScheduler(
            mode="thread", jobs=2, queue_depth=1,
            cache_dir=str(tmp_path / "cache"))
        # Pin span computation so the response-cache key matches the
        # fake outcome: whatever the interleaving, an identical request
        # either coalesces or hits the cache — never re-executes.
        scheduler._span = lambda manifest: f"span-{manifest.seed}"
        handle = start_in_thread(scheduler, port=0)
        try:
            first = []
            leader = threading.Thread(
                target=lambda: first.append(post(handle, SMOKE)))
            leader.start()
            assert entered.wait(30), "leader must reach execution"

            status, headers, _body = post(
                handle, dict(SMOKE, seed=99))  # distinct -> new work
            assert status == 503
            assert "Retry-After" in headers

            follower = []
            follower_thread = threading.Thread(
                target=lambda: follower.append(post(handle, SMOKE)))
            follower_thread.start()
            release.set()
            leader.join(30)
            follower_thread.join(30)
            assert first[0][0] == follower[0][0] == 200
            assert first[0][2] == follower[0][2] == b"done\n"
            sources = {first[0][1]["X-Repro-Cache"],
                       follower[0][1]["X-Repro-Cache"]}
            # The second identical request either coalesced onto the
            # in-flight run or (if it arrived after publication) hit
            # the response cache — never a second execution.
            assert "miss" in sources and sources <= {"miss",
                                                     "coalesced", "hit"}
            assert handle.server.scheduler.stats.executed == 1
            assert handle.server.scheduler.stats.rejected_queue == 1
        finally:
            release.set()
            handle.stop()


class TestStreaming:
    def test_ndjson_progress_then_identical_body(self, server):
        plain = post(server, dict(SMOKE, seed=5))
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=120)
        try:
            conn.request("POST", "/v1/run",
                         body=json.dumps(dict(SMOKE, seed=5,
                                              stream=True)))
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == \
                "application/x-ndjson"
            events = [json.loads(line) for line
                      in response.read().splitlines() if line.strip()]
        finally:
            conn.close()
        kinds = [event["event"] for event in events]
        assert kinds[-1] == "result"
        assert all(kind == "progress" for kind in kinds[:-1])
        assert len(kinds) > 1, "at least one progress tick"
        final = events[-1]
        assert final["body"].encode() == plain[2]
        assert final["run_id"] == plain[1]["X-Repro-Run-Id"]
        assert final["exit_code"] == 0
        done = [event["done"] for event in events[:-1]]
        assert done == sorted(done), "progress is monotonic"

"""``repro.obs`` — unified telemetry: tracing, metrics, profiling.

The observability substrate shared by every layer of the toolkit:

* :class:`EventStream` (:mod:`repro.obs.events`) — ring-buffered
  structured event tracing (token fired, stall asserted, relay
  occupancy change, monitor violation, fixpoint ambiguity);
* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — typed
  counters/gauges/histograms with deterministic snapshots, guaranteed
  identical across the scalar and vectorized skeleton backends;
* :class:`Profiler` (:mod:`repro.obs.profiler`) — phase-level wall-time
  accounting (us/cycle, events/sec);
* :mod:`repro.obs.exporters` — JSONL and Chrome-trace (Perfetto)
  serialization.

:class:`Telemetry` bundles the three pillars into the single handle the
instrumented code paths accept.  Everything is **opt-in**: with no
telemetry attached (the default) the simulators run their original hot
loops with only a branch of overhead.

See ``docs/observability.md`` for the event taxonomy, the metric path
reference and usage examples.
"""

from __future__ import annotations

from typing import Optional

from .events import CATEGORIES, DEFAULT_CAPACITY, Event, EventStream
from .exporters import (
    export_stream,
    merged_chrome_trace,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_merged_chrome_trace,
)
from .ledger import (
    LEDGER_SCHEMA,
    append_record,
    canonical_payload_bytes,
    default_ledger_path,
    diff_records,
    make_record,
    read_ledger,
    resolve_record,
    span_id,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flatten_snapshot,
    merge_snapshots,
)
from .profiler import Profiler
from .progress import ProgressReporter
from .regress import (
    Regression,
    TrendPoint,
    bench_trend,
    find_regressions,
    format_report,
    ledger_trend,
)


class Telemetry:
    """Bundle of the three observability pillars.

    Any pillar may be ``None``: instrumented code checks
    :attr:`events` / :attr:`metrics` / :attr:`profiler` individually,
    so a metrics-only or profile-only run pays only for what it uses.
    """

    __slots__ = ("events", "metrics", "profiler")

    def __init__(
        self,
        events: Optional[EventStream] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[Profiler] = None,
    ):
        self.events = events
        self.metrics = metrics
        self.profiler = profiler

    @classmethod
    def full(cls, capacity: Optional[int] = DEFAULT_CAPACITY
             ) -> "Telemetry":
        """All three pillars enabled (the ``repro-lid trace`` default)."""
        return cls(events=EventStream(capacity=capacity),
                   metrics=MetricsRegistry(), profiler=Profiler())

    @classmethod
    def metrics_only(cls) -> "Telemetry":
        return cls(metrics=MetricsRegistry())

    @classmethod
    def profile_only(cls) -> "Telemetry":
        return cls(profiler=Profiler())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        on = [name for name in ("events", "metrics", "profiler")
              if getattr(self, name) is not None]
        return f"Telemetry({'+'.join(on) or 'disabled'})"


__all__ = [
    "CATEGORIES",
    "Counter",
    "DEFAULT_CAPACITY",
    "Event",
    "EventStream",
    "Gauge",
    "Histogram",
    "LEDGER_SCHEMA",
    "MetricsRegistry",
    "Profiler",
    "ProgressReporter",
    "Regression",
    "Telemetry",
    "TrendPoint",
    "append_record",
    "bench_trend",
    "canonical_payload_bytes",
    "default_ledger_path",
    "diff_records",
    "export_stream",
    "find_regressions",
    "flatten_snapshot",
    "format_report",
    "ledger_trend",
    "make_record",
    "merge_snapshots",
    "merged_chrome_trace",
    "read_jsonl",
    "read_ledger",
    "resolve_record",
    "span_id",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_merged_chrome_trace",
]

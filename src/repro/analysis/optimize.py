"""Relay-station budgeting: where may pipelining go for free?

Path equalization (:mod:`repro.graph.equalize`) balances an existing
design.  This module answers the designer's converse questions:

* :func:`free_slack` — how many relay stations can each edge absorb
  **without lowering system throughput**?  Interconnect that needs
  pipelining should be routed over high-slack edges.
* :func:`max_relays_at_rate` — the largest relay chain a given edge
  tolerates while the system stays at/above a target rate.
* :func:`insertion_plan` — given per-edge *required* relay counts (from
  wire lengths), top them up so the design is balanced and meets the
  best achievable throughput, returning the annotated graph.

All answers are computed with the minimum-cycle-ratio analyzer, so they
are exact and need no simulation; the tests cross-check them by
skeleton simulation anyway.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..errors import AnalysisError
from ..graph.equalize import equalize
from ..graph.model import SystemGraph
from .mcr import min_cycle_ratio_throughput


def _with_relays(graph: SystemGraph, edge_index: int,
                 count: int) -> SystemGraph:
    modified = graph.copy(f"{graph.name}_probe")
    edge = modified.edges[edge_index]
    edge.relays = ("full",) * count
    return modified


def max_relays_at_rate(
    graph: SystemGraph,
    edge_index: int,
    target: Optional[Fraction] = None,
    limit: int = 64,
) -> int:
    """Largest full-relay chain on edge *edge_index* keeping T >= target.

    *target* defaults to the graph's current throughput.  Monotonicity
    (more relay stations never raise throughput) lets us binary search.
    Returns *limit* when the edge never becomes binding within it.
    """
    if not 0 <= edge_index < len(graph.edges):
        raise AnalysisError(f"no edge index {edge_index}")
    if target is None:
        target = min_cycle_ratio_throughput(graph).throughput

    def ok(count: int) -> bool:
        probe = _with_relays(graph, edge_index, count)
        return min_cycle_ratio_throughput(probe).throughput >= target

    base = len(graph.edges[edge_index].relays)
    if not ok(base):
        raise AnalysisError(
            "graph is below the target rate before any insertion"
        )
    lo, hi = base, limit
    if ok(hi):
        return hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if ok(mid):
            lo = mid
        else:
            hi = mid
    return lo


def free_slack(graph: SystemGraph,
               limit: int = 64) -> Dict[Tuple[str, str], int]:
    """Extra relay stations each edge absorbs at unchanged throughput.

    Keys are (src, dst); for parallel edges the first occurrence wins
    (probe by index if you need finer control).
    """
    baseline = min_cycle_ratio_throughput(graph).throughput
    slack: Dict[Tuple[str, str], int] = {}
    for index, edge in enumerate(graph.edges):
        key = (edge.src, edge.dst)
        if key in slack:
            continue
        best = max_relays_at_rate(graph, index, target=baseline,
                                  limit=limit)
        slack[key] = best - len(edge.relays)
    return slack


def insertion_plan(
    graph: SystemGraph,
    required: Dict[Tuple[str, str], int],
    name: Optional[str] = None,
) -> Tuple[SystemGraph, Fraction]:
    """Meet per-edge relay requirements, then rebalance.

    *required* maps (src, dst) to the minimum relay count physical wire
    length demands.  The plan (1) raises every edge to its requirement,
    (2) runs path equalization so the feed-forward part stays at full
    rate, and returns the annotated graph plus its exact throughput.
    """
    staged = graph.copy(name or f"{graph.name}_planned")
    for edge in staged.edges:
        need = required.get((edge.src, edge.dst))
        if need is not None and need > len(edge.relays):
            edge.relays = edge.relays + ("full",) * (
                need - len(edge.relays))
    balanced = equalize(staged, name or f"{graph.name}_planned")
    rate = min_cycle_ratio_throughput(balanced).throughput
    return balanced, rate


def pareto_relay_throughput(
    graph: SystemGraph,
    edge_index: int,
    max_relays: int = 8,
) -> List[Tuple[int, Fraction]]:
    """(relay count, throughput) curve for one edge — the figure-style
    series showing where an edge starts costing bandwidth."""
    curve: List[Tuple[int, Fraction]] = []
    for count in range(max_relays + 1):
        probe = _with_relays(graph, edge_index, count)
        curve.append(
            (count, min_cycle_ratio_throughput(probe).throughput))
    return curve

"""Persistent run ledger: schema-versioned, content-addressed records.

Telemetry from :mod:`repro.obs` dies with the process; the ledger is
the durable half.  Every campaign, deadlock check, throughput sweep and
bench run can append one **run record** to an append-only JSONL file:

* the **canonical payload** — kind, topology, IR fingerprint, variant,
  parameters, git revision, PassPipeline audit, verdict summary and a
  digest of the metrics snapshot — is deterministic: the same run
  (serial or ``--jobs N``) produces byte-identical canonical payloads,
  so two ledger lines from identical runs ``cmp`` equal after
  :func:`canonical_payload_bytes` extraction;
* the **run id** is content-addressed: the sha256 of the canonical
  payload bytes.  Identical runs share an id; any divergence in the key
  components (fingerprint, params, git rev, verdict) changes it;
* **meta** carries everything wall-clock-bound — timestamps, wall
  seconds, per-phase profiler timings, jobs/worker/cache audit — and is
  deliberately *excluded* from the id and the canonical bytes.

Writes go through a single ``O_APPEND``-mode ``write()`` per record —
POSIX serialises append-mode writes to a regular file, so concurrent
appenders (parallel ``--ledger`` campaigns) interleave whole lines and
never lose each other's records.  Reads are tolerant — an unparsable
or wrong-schema line is a warning and a skip, never a crash.

``repro-lid obs`` (ls / show / diff / regress) is the CLI over this
module; ``docs/observability.md`` documents the record schema.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Bump on any change to the canonical payload layout.
LEDGER_SCHEMA = "repro-obs-ledger/v1"

#: Payload fields that participate in cache/identity attribution: when
#: two records diverge, ``diff_records`` names which of these moved.
KEY_COMPONENTS = ("kind", "topology", "fingerprint", "variant",
                  "params", "git_rev", "passes")


def default_ledger_path() -> str:
    """``$REPRO_LID_LEDGER`` or ``~/.cache/repro-lid/ledger.jsonl``."""
    override = os.environ.get("REPRO_LID_LEDGER")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-lid",
                        "ledger.jsonl")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators, ASCII."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def payload_digest(obj: Any) -> str:
    """sha256 hex of the canonical JSON rendering of *obj*."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


def canonical_payload_bytes(record: Dict[str, Any]) -> bytes:
    """The byte-deterministic part of a record (one JSON line).

    Two runs of the same campaign — serial or parallel, cold or warm
    cache — yield ``cmp``-equal canonical bytes; this is what the CI
    obs-smoke step compares.
    """
    return (canonical_json(record.get("payload", {})) + "\n").encode()


def span_id(kind: str, fingerprint: Optional[str], variant: Optional[str],
            params: Optional[Dict[str, Any]]) -> str:
    """Pre-run identity of a unit of work (kind + design + config).

    Deterministic *before* the run finishes — campaigns propagate it to
    workers as the trace/run correlation id, and regression tracking
    groups ledger records by it (same work, different commits/times).
    """
    return payload_digest({
        "kind": kind,
        "fingerprint": fingerprint,
        "variant": variant,
        "params": params or {},
    })[:12]


def make_record(
    kind: str,
    *,
    topology: Optional[str] = None,
    fingerprint: Optional[str] = None,
    variant: Optional[str] = None,
    params: Optional[Dict[str, Any]] = None,
    verdict: Optional[Dict[str, Any]] = None,
    passes: Iterable[Any] = (),
    metrics: Optional[Dict[str, Any]] = None,
    git_rev: Optional[str] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build one ledger record; the run id is content-addressed.

    *passes* accepts :class:`repro.ir.passes.PassRecord` objects or
    plain dicts (the audit log of any PassPipeline that shaped the
    design before the run).  *metrics* is a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`; only its
    digest enters the payload, keeping ledger lines small while still
    detecting any metric divergence between runs.
    """
    if git_rev is None:
        from ..bench.runner import git_rev as _git_rev

        git_rev = _git_rev()
    audit = [p.to_dict() if hasattr(p, "to_dict") else dict(p)
             for p in passes]
    payload: Dict[str, Any] = {
        "kind": kind,
        "topology": topology,
        "fingerprint": fingerprint,
        "variant": variant,
        "params": dict(params or {}),
        "git_rev": git_rev,
        "passes": audit,
        "verdict": dict(verdict or {}),
        "metrics_digest": (payload_digest(metrics)
                           if metrics is not None else None),
        "span": span_id(kind, fingerprint, variant, params),
    }
    return {
        "schema": LEDGER_SCHEMA,
        "run_id": payload_digest(payload)[:16],
        "payload": payload,
        "meta": dict(meta or {}),
    }


def append_record(path: str, record: Dict[str, Any]) -> str:
    """Append *record* to the JSONL ledger at *path*.

    One newline-terminated line lands via a single ``write()`` on an
    ``O_APPEND`` descriptor.  POSIX serialises append-mode writes to a
    regular file, so any number of concurrent appenders (parallel
    ``--ledger`` campaigns) interleave whole records without losing
    any — the earlier read-rewrite implementation raced here and
    silently dropped lines.  The append is O(record), not O(ledger).

    If the existing tail lost its newline (a writer killed mid-write),
    one is prefixed so this record still starts on a fresh line; the
    tolerant reader then skips only the torn fragment.  Returns the
    record's run id.
    """
    line = (json.dumps(record, sort_keys=True, separators=(",", ":"))
            + "\n").encode()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        try:
            with open(path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                torn = fh.read(1) != b"\n"
        except OSError:
            torn = False  # empty file: nothing to repair
        if torn:
            # A concurrent proper append always ends in a newline, so a
            # racing writer can at worst turn this repair into a blank
            # line — which the reader skips.
            line = b"\n" + line
        os.write(fd, line)
    finally:
        os.close(fd)
    return record["run_id"]


def read_ledger(path: str) -> List[Dict[str, Any]]:
    """Every well-formed record in *path*, in append order.

    Tolerant like :func:`repro.bench.runner.read_records`: a corrupt or
    wrong-schema line is skipped with a warning on stderr — one bad
    line must not take down a dashboard reading hundreds.
    """
    records: List[Dict[str, Any]] = []
    try:
        fh = open(path, encoding="utf-8")
    except FileNotFoundError:
        return records
    with fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                print(f"warning: skipping unparsable ledger line "
                      f"{path}:{lineno}: {exc}", file=sys.stderr)
                continue
            if not isinstance(record, dict) \
                    or record.get("schema") != LEDGER_SCHEMA:
                print(f"warning: skipping {path}:{lineno}: not a "
                      f"{LEDGER_SCHEMA} record", file=sys.stderr)
                continue
            records.append(record)
    return records


def resolve_record(records: List[Dict[str, Any]],
                   ref: str) -> Tuple[int, Dict[str, Any]]:
    """Find one record by ``@index`` (append order, negatives OK), by a
    run-id prefix, or by ``span:PREFIX[@OCC]``; raises
    :class:`ValueError` on miss or ambiguity.

    A run-id prefix matching several *identical* ids (the same run
    recorded twice) resolves to the latest occurrence — re-running a
    deterministic campaign appends a duplicate id by design.

    ``span:PREFIX`` resolves to the **newest** record of the span whose
    id starts with ``PREFIX`` (``@span:PREFIX`` is accepted too, and
    ``span:PREFIX:latest`` spells the default out loud).  ``@OCC``
    indexes the span's occurrences in append order (``@-2`` = the
    previous run of the same work), so a served campaign is diffable
    against its offline CLI twin without hand-copying run ids:
    ``obs diff span:PREFIX@-2 span:PREFIX``.
    """
    if not records:
        raise ValueError("ledger is empty")
    span_ref = None
    if ref.startswith("span:"):
        span_ref = ref[len("span:"):]
    elif ref.startswith("@span:"):
        span_ref = ref[len("@span:"):]
    if span_ref is not None:
        return _resolve_span(records, ref, span_ref)
    if ref.startswith("@"):
        try:
            index = int(ref[1:])
        except ValueError:
            raise ValueError(f"bad ledger index {ref!r}") from None
        try:
            record = records[index]
        except IndexError:
            raise ValueError(
                f"ledger index {ref} out of range "
                f"({len(records)} records)") from None
        return (index if index >= 0 else len(records) + index), record
    matches = [(i, r) for i, r in enumerate(records)
               if r.get("run_id", "").startswith(ref)]
    if not matches:
        raise ValueError(f"no ledger record matches {ref!r}")
    distinct = {r["run_id"] for _i, r in matches}
    if len(distinct) > 1:
        raise ValueError(
            f"{ref!r} is ambiguous: matches "
            + ", ".join(sorted(distinct)))
    return matches[-1]


def _resolve_span(records: List[Dict[str, Any]], ref: str,
                  span_ref: str) -> Tuple[int, Dict[str, Any]]:
    """``span:PREFIX[@OCC]`` -> one record (newest occurrence default)."""
    occurrence = -1
    prefix, at, occ_text = span_ref.partition("@")
    if at:
        try:
            occurrence = int(occ_text)
        except ValueError:
            raise ValueError(
                f"bad span occurrence {occ_text!r} in {ref!r}") from None
    if prefix.endswith(":latest"):
        prefix = prefix[:-len(":latest")]
    if not prefix:
        raise ValueError(f"empty span prefix in {ref!r}")
    matches = [(i, r) for i, r in enumerate(records)
               if str(r.get("payload", {}).get("span", ""))
               .startswith(prefix)]
    if not matches:
        raise ValueError(f"no ledger record's span matches {ref!r}")
    distinct = {r["payload"]["span"] for _i, r in matches}
    if len(distinct) > 1:
        raise ValueError(
            f"span prefix {prefix!r} is ambiguous: matches "
            + ", ".join(sorted(distinct)))
    try:
        return matches[occurrence]
    except IndexError:
        raise ValueError(
            f"span {prefix!r} has only {len(matches)} occurrence(s); "
            f"{ref!r} is out of range") from None


def diff_records(a: Dict[str, Any],
                 b: Dict[str, Any]) -> Dict[str, Any]:
    """Structured delta between two run records.

    ``identical`` is true iff the canonical payloads are byte-equal.
    ``attribution`` names which key components diverged (fingerprint vs
    params vs git rev ...), ``verdict`` lists per-class count deltas
    and ``timing`` the wall/cache meta deltas — the question the diff
    answers is "same run, or what changed, and did it cost anything".
    """
    pa, pb = a.get("payload", {}), b.get("payload", {})
    attribution = [component for component in KEY_COMPONENTS
                   if pa.get(component) != pb.get(component)]
    verdict_delta: Dict[str, Tuple[Any, Any]] = {}
    va, vb = pa.get("verdict", {}) or {}, pb.get("verdict", {}) or {}
    for key in sorted(set(va) | set(vb)):
        if va.get(key) != vb.get(key):
            verdict_delta[key] = (va.get(key), vb.get(key))
    if pa.get("metrics_digest") != pb.get("metrics_digest"):
        verdict_delta["metrics_digest"] = (pa.get("metrics_digest"),
                                           pb.get("metrics_digest"))
    timing: Dict[str, Any] = {}
    ma, mb = a.get("meta", {}) or {}, b.get("meta", {}) or {}
    wa, wb = ma.get("wall_seconds"), mb.get("wall_seconds")
    if isinstance(wa, (int, float)) and isinstance(wb, (int, float)):
        timing["wall_seconds"] = (wa, wb)
        if wa:
            timing["wall_ratio"] = wb / wa
    ca, cb = ma.get("cache"), mb.get("cache")
    if ca != cb:
        timing["cache"] = (ca, cb)
    return {
        "identical": canonical_payload_bytes(a) ==
        canonical_payload_bytes(b),
        "run_ids": (a.get("run_id"), b.get("run_id")),
        "attribution": attribution,
        "verdict": verdict_delta,
        "timing": timing,
    }


def format_diff(diff: Dict[str, Any]) -> str:
    """Human rendering of :func:`diff_records` (the ``obs diff`` CLI)."""
    lines = [f"runs: {diff['run_ids'][0]} vs {diff['run_ids'][1]}"]
    if diff["identical"]:
        lines.append("no deltas: canonical payloads are byte-identical")
    else:
        lines.append("diverged components: "
                     + (", ".join(diff["attribution"]) or "verdict only"))
        for key, (va, vb) in sorted(diff["verdict"].items()):
            lines.append(f"  verdict {key}: {va!r} -> {vb!r}")
    timing = diff["timing"]
    if "wall_seconds" in timing:
        wa, wb = timing["wall_seconds"]
        ratio = (f" ({timing['wall_ratio']:.2f}x)"
                 if "wall_ratio" in timing else "")
        lines.append(f"wall: {wa:.3f}s -> {wb:.3f}s{ratio}")
    if "cache" in timing:
        ca, cb = timing["cache"]
        lines.append(f"cache: {ca} -> {cb}")
    return "\n".join(lines)


def format_ls(records: List[Dict[str, Any]]) -> str:
    """Summary table of a ledger (the ``obs ls`` CLI)."""
    from ..bench.tables import format_table

    rows = []
    for index, record in enumerate(records):
        payload = record.get("payload", {})
        meta = record.get("meta", {}) or {}
        verdict = payload.get("verdict", {}) or {}
        summary = " ".join(f"{k}={v}" for k, v in sorted(verdict.items())
                           if isinstance(v, (int, str, bool)))
        wall = meta.get("wall_seconds")
        rows.append((
            f"@{index}",
            record.get("run_id", "?"),
            payload.get("kind", "?"),
            payload.get("topology") or "-",
            payload.get("variant") or "-",
            (payload.get("fingerprint") or "-")[:12],
            payload.get("span") or "-",
            f"{wall:.3f}s" if isinstance(wall, (int, float)) else "-",
            summary[:48] or "-",
        ))
    return format_table(
        ("#", "run id", "kind", "topology", "variant", "fingerprint",
         "span", "wall", "verdict"),
        rows,
        title=f"run ledger: {len(records)} record(s)",
    )

"""Tests for the refinement-checking library API."""

import pytest

from repro.lid.variant import ProtocolVariant
from repro.verify import (
    RefinementResult,
    check_refinement_stack,
    cosimulate_relay_netlist,
    cosimulate_relay_spec,
)


class TestSpecCosimulation:
    @pytest.mark.parametrize("kind", ["full", "half", "half-registered"])
    @pytest.mark.parametrize("variant", list(ProtocolVariant))
    def test_behavioural_refines_spec(self, kind, variant):
        result = cosimulate_relay_spec(kind, seed=3, cycles=300,
                                       variant=variant)
        assert result.equivalent, result.divergence

    def test_result_metadata(self):
        result = cosimulate_relay_spec("full", cycles=100)
        assert result.cycles == 100
        assert "behavioural vs spec" in result.levels
        assert bool(result)

    def test_mutation_produces_divergence_report(self, monkeypatch):
        from repro.verify import fsm

        original = fsm.full_rs_step

        def broken(state, in_tok, stop_in, variant=None):
            nxt = original(state, in_tok, stop_in,
                           variant or ProtocolVariant.CASU)
            if nxt.main is not None and stop_in:
                import dataclasses

                return dataclasses.replace(nxt, main=(nxt.main + 1) % 50)
            return nxt

        monkeypatch.setattr(fsm, "full_rs_step", broken)
        result = cosimulate_relay_spec("full", seed=1, cycles=300)
        assert not result.equivalent
        assert result.divergence is not None
        assert "cycle" in result.divergence


class TestNetlistCosimulation:
    @pytest.mark.parametrize("kind", ["full", "half"])
    @pytest.mark.parametrize("variant", list(ProtocolVariant))
    def test_netlist_refines_spec(self, kind, variant):
        result = cosimulate_relay_netlist(kind, seed=5, cycles=300,
                                          variant=variant)
        assert result.equivalent, result.divergence

    def test_ablation_variant_has_no_netlist(self):
        with pytest.raises(ValueError):
            cosimulate_relay_netlist("half-registered")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            cosimulate_relay_spec("quarter")


class TestCampaign:
    def test_full_stack_equivalent(self):
        results = check_refinement_stack(seeds=(0,), cycles=200)
        assert len(results) == 2 * (3 + 2)  # variants x (spec + netlist)
        assert all(r.equivalent for r in results)

    def test_results_are_refinement_results(self):
        results = check_refinement_stack(seeds=(0,), cycles=50)
        assert all(isinstance(r, RefinementResult) for r in results)

"""Parallel campaign execution: jobs-invariance, caching, parity.

The contract under test (docs/parallelism.md): a campaign report is a
pure function of ``(graph, variant, fault list, cycles, seed)`` — the
``jobs`` value and the cache may change the wall clock, never a byte
of the report.
"""

import json

import pytest

from repro.cli import main
from repro.exec import GraphRef, ResultCache
from repro.graph import figure2
from repro.inject import run_campaign, skeleton_campaign
from repro.lid.variant import ProtocolVariant
from repro.obs import Telemetry

REF = GraphRef.from_spec("figure2")


def _campaign(jobs=1, cache=None, telemetry=None, **overrides):
    params = dict(variant=ProtocolVariant.CASU, classes=("stop", "void"),
                  cycles=100, samples=24, seed=7, strict=True)
    params.update(overrides)
    return run_campaign(figure2(), jobs=jobs, graph_ref=REF, cache=cache,
                        telemetry=telemetry, **params)


class TestJobsInvariance:
    def test_report_bytes_identical_across_jobs(self):
        serial = _campaign(jobs=1).to_json()
        for jobs in (2, 4):
            assert _campaign(jobs=jobs).to_json() == serial

    def test_metrics_merge_matches_serial_accumulation(self):
        serial_t = Telemetry.metrics_only()
        _campaign(jobs=1, telemetry=serial_t)
        parallel_t = Telemetry.metrics_only()
        _campaign(jobs=3, telemetry=parallel_t)
        assert (parallel_t.metrics.snapshot()
                == serial_t.metrics.snapshot())

    def test_execution_header_audits_but_never_leaks(self):
        report = _campaign(jobs=3, cache=ResultCache.memory())
        assert report.execution["jobs"] == 3
        assert report.execution["workers"] == 3
        assert report.execution["cache"] == {"hits": 0, "misses": 1,
                                             "evictions": 0}
        # Default payload excludes the header (jobs-invariance)...
        assert "execution" not in report.to_payload()
        # ...and the audit opt-in includes it.
        assert report.to_payload(execution=True)["execution"] == (
            report.execution)

    def test_worker_count_capped_by_fault_count(self):
        report = _campaign(jobs=16, samples=3)
        assert report.execution["workers"] == 3
        assert report.to_json() == _campaign(jobs=1, samples=3).to_json()


class TestGoldenRunCache:
    def test_second_campaign_hits_and_agrees(self):
        cache = ResultCache.memory()
        first = _campaign(cache=cache)
        assert cache.stats.to_dict() == {"hits": 0, "misses": 1,
                                         "evictions": 0}
        second = _campaign(cache=cache)
        assert cache.stats.hits == 1
        assert second.to_json() == first.to_json()

    def test_cache_never_changes_the_report(self):
        assert (_campaign(cache=ResultCache.memory()).to_json()
                == _campaign(cache=None).to_json())

    def test_different_cycles_do_not_share_entries(self):
        cache = ResultCache.memory()
        _campaign(cache=cache, cycles=100)
        _campaign(cache=cache, cycles=120)
        assert cache.stats.misses == 2


class TestSkeletonParallelContract:
    def test_skeleton_report_invariant_and_audited(self):
        serial = skeleton_campaign(figure2(), cycles=100, samples=24,
                                   seed=7, jobs=1)
        parallel = skeleton_campaign(figure2(), cycles=100, samples=24,
                                     seed=7, jobs=4)
        assert parallel.to_json() == serial.to_json()
        # The batched engine is the parallelism; jobs is recorded for
        # the audit header but the engine stays single-process.
        assert parallel.execution == {"backend": "vectorized",
                                      "jobs": 4, "workers": 1,
                                      "cache": None}


class TestInjectCliParallel:
    ARGS = ["inject", "--topology", "feedback", "--faults", "stop,void",
            "--cycles", "100", "--samples", "32", "--seed", "7",
            "--format", "json"]

    def test_jobs_1_vs_4_byte_identical(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(self.ARGS + ["--jobs", "1", "--cache-dir", cache_dir,
                                 "-o", str(serial)]) == 0
        assert main(self.ARGS + ["--jobs", "4", "--cache-dir", cache_dir,
                                 "-o", str(parallel)]) == 0
        assert serial.read_bytes() == parallel.read_bytes()
        out = capsys.readouterr().out
        assert "jobs=1 cache-hits=0 cache-misses=1" in out
        assert "jobs=4 cache-hits=1 cache-misses=0" in out

    def test_no_cache_flag_still_byte_identical(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(self.ARGS + ["--no-cache", "-o", str(a)]) == 0
        assert main(self.ARGS + ["--jobs", "2", "--no-cache",
                                 "-o", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        assert "cache-hits" not in capsys.readouterr().out

    def test_poisoned_cache_entry_is_survived(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        good = tmp_path / "good.json"
        again = tmp_path / "again.json"
        assert main(self.ARGS + ["--cache-dir", str(cache_dir),
                                 "-o", str(good)]) == 0
        entries = list(cache_dir.glob("*.pkl"))
        assert entries
        for entry in entries:
            entry.write_bytes(entry.read_bytes()[:7])  # torn write
        assert main(self.ARGS + ["--cache-dir", str(cache_dir),
                                 "-o", str(again)]) == 0
        assert good.read_bytes() == again.read_bytes()
        err = capsys.readouterr().err
        assert "poisoned cache entry" in err

    def test_metrics_out_invariant_under_jobs(self, tmp_path, capsys):
        serial = tmp_path / "serial-metrics.json"
        parallel = tmp_path / "parallel-metrics.json"
        assert main(self.ARGS + ["--no-cache", "--metrics-out",
                                 str(serial)]) == 0
        assert main(self.ARGS + ["--jobs", "4", "--no-cache",
                                 "--metrics-out", str(parallel)]) == 0
        a = json.loads(serial.read_text())
        b = json.loads(parallel.read_text())
        assert a["metrics"] == b["metrics"]
        capsys.readouterr()

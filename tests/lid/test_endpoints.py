"""Unit tests for sources and sinks."""

import itertools

import pytest

from repro import LidSystem, pearls
from repro.errors import StructuralError
from repro.lid.endpoints import Sink, Source, counting_stream, scripted_stream
from repro.lid.token import Token, VOID


class TestStreams:
    def test_counting_stream(self):
        stream = counting_stream()
        assert [next(stream).value for _ in range(4)] == [0, 1, 2, 3]

    def test_scripted_stream_voids(self):
        stream = scripted_stream([1, None, 2])
        toks = [next(stream) for _ in range(5)]
        assert toks[0] == Token(1)
        assert toks[1] is VOID
        assert toks[2] == Token(2)
        assert toks[3] is VOID and toks[4] is VOID

    def test_scripted_stream_accepts_tokens(self):
        stream = scripted_stream([Token(9), None])
        assert next(stream) == Token(9)
        assert next(stream) is VOID


def direct_system(stream=None, stop_script=None):
    system = LidSystem("d")
    src = system.add_source("src", stream=stream)
    sink = system.add_sink("out", stop_script=stop_script)
    system.connect(src, sink, relays=1)
    return system, src, sink


class TestSource:
    def test_default_counting(self):
        system, src, sink = direct_system()
        system.run(10)
        assert sink.payloads == list(range(9))  # 1-cycle relay latency

    def test_list_pattern(self):
        system, src, sink = direct_system(stream=[5, 6, None, 7])
        system.run(10)
        assert sink.payloads == [5, 6, 7]

    def test_factory_stream_replayable(self):
        factory = lambda: iter([Token(1), Token(2)])
        system, src, sink = direct_system(stream=factory)
        system.run(5)
        first = list(sink.payloads)
        system.run(5)  # implicit reset replays the factory
        assert sink.payloads == first == [1, 2]

    def test_source_holds_on_stop(self):
        system, src, sink = direct_system(stop_script=lambda c: c < 4)
        system.run(12)
        # Nothing lost: the stream resumes in order once the stop drops.
        assert sink.payloads == list(range(len(sink.payloads)))

    def test_emitted_log(self):
        system, src, sink = direct_system(stream=[1, 2])
        system.run(6)
        assert [v for _c, v in src.emitted] == [1, 2]

    def test_double_connect_rejected(self):
        system = LidSystem("x")
        src = system.add_source("src")
        s1 = system.add_sink("o1")
        s2 = system.add_sink("o2")
        system.connect(src, s1)
        with pytest.raises(StructuralError):
            system.connect(src, s2)


class TestSink:
    def test_throughput(self):
        system, src, sink = direct_system()
        system.run(20)
        assert sink.throughput(20) == pytest.approx(19 / 20)
        assert sink.steady_throughput(2, 20) == 1.0

    def test_throughput_empty_window(self):
        sink = Sink("s")
        assert sink.throughput(0) == 0.0
        assert sink.steady_throughput(5, 5) == 0.0

    def test_void_cycles_recorded(self):
        system, src, sink = direct_system(stream=[1, None, 2])
        system.run(6)
        assert len(sink.void_cycles) >= 1

    def test_stop_script_blocks_acceptance(self):
        system, src, sink = direct_system(stop_script=lambda c: True)
        system.run(10)
        assert sink.payloads == []

    def test_periodic_stop_accepts_some(self):
        system, src, sink = direct_system(stop_script=lambda c: c % 2 == 0)
        system.run(20)
        assert 0 < len(sink.payloads) < 20
        assert sink.payloads == list(range(len(sink.payloads)))

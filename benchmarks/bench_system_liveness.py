"""EXP-D1b (extension): exhaustive liveness over all environments.

The paper: "Since liveness is topology dependent, we couldn't verify
formally the protocol as such" — and resorted to simulating scripts.
For small concrete topologies this bench does what the paper could not:
explores every environment behaviour (nondeterministic source offers,
nondeterministic sink stops, hold contract enforced) and proves
deadlock-freedom, or exhibits a reachable stuck state.
"""

import pytest

from repro.bench.tables import format_table
from repro.graph import figure1, figure2, pipeline, ring, self_loop, tree
from repro.lid.variant import ProtocolVariant
from repro.verify import verify_system_liveness

CASES = [
    ("pipeline3", pipeline(3)),
    ("tree_d2", tree(2)),
    ("figure1", figure1()),
    ("figure2", figure2()),
    ("ring3", ring(3, relays_per_arc=1)),
    ("self_loop", self_loop(relays=2)),
    ("ring_half_full", ring(2, relays_per_arc=[["half"], ["full"]])),
    ("ring_all_half", ring(2, relays_per_arc=[["half"], ["half"]])),
]


def test_bench_exhaustive_liveness_table(benchmark, emit):
    def run():
        rows = []
        for name, graph in CASES:
            for variant in (ProtocolVariant.CASU,
                            ProtocolVariant.CARLONI):
                result = verify_system_liveness(graph, variant=variant)
                rows.append((
                    name, str(variant),
                    "LIVE (proved)" if result.live else "STUCK STATE",
                    result.reachable_states,
                    result.transitions,
                ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("EXP-D1b-exhaustive-liveness", format_table(
        ("system", "variant", "verdict", "states", "transitions"),
        rows,
        title="Exhaustive liveness: all environment behaviours "
              "(what the paper's script-based simulation approximates)",
    ))
    verdicts = {(r[0], r[1]): r[2] for r in rows}
    # Every legal system is proved live under both variants...
    for name, _graph in CASES:
        if "half" not in name:
            assert verdicts[(name, "casu")].startswith("LIVE")
            assert verdicts[(name, "carloni")].startswith("LIVE")
    # ...and the hazard class is live refined / stuck original.
    for name in ("ring_half_full", "ring_all_half"):
        assert verdicts[(name, "casu")].startswith("LIVE")
        assert verdicts[(name, "carloni")] == "STUCK STATE"


@pytest.mark.parametrize("name,graph", CASES[:6])
def test_bench_liveness_exploration_speed(benchmark, name, graph):
    def run():
        return verify_system_liveness(graph)

    result = benchmark(run)
    assert result.live

"""Cycle-accurate synchronous simulation kernel.

This is the substrate that replaces the VHDL + event-driven simulator the
paper used (DESIGN.md §2): a two-phase (settle / edge) single-clock RTL
simulator with monotone combinational fixpoint for the backward ``stop``
network, waveform tracing and VCD export.
"""

from .component import Component
from .scheduler import Simulator
from .signal import Signal, SignalBundle
from .trace import Trace
from .vcd import dumps_vcd, write_vcd

__all__ = [
    "Component",
    "Signal",
    "SignalBundle",
    "Simulator",
    "Trace",
    "dumps_vcd",
    "write_vcd",
]

"""Tests for graph JSON serialization."""

import json

import pytest

from repro.errors import StructuralError
from repro.graph import (
    SystemGraph,
    figure1,
    from_dict,
    load_graph,
    pearl_spec,
    save_graph,
    to_dict,
)
from repro.pearls import Identity
from repro.skeleton import system_throughput


def spec_graph():
    g = SystemGraph("spec")
    g.add_source("src")
    g.add_shell("fir", pearl_spec("FirFilter", taps=(1, 2, 1)))
    g.add_shell("scale", pearl_spec("Scaler", gain=3))
    g.add_sink("out")
    g.add_edge("src", "fir", dst_port="a")
    g.add_edge("fir", "scale", relays=("full", "half"), dst_port="a")
    g.add_edge("scale", "out")
    return g


class TestPearlSpec:
    def test_factory_builds_configured_pearl(self):
        factory = pearl_spec("Scaler", gain=5)
        pearl = factory()
        pearl.reset()
        assert pearl.step({"a": 2}) == {"out": 10}

    def test_unknown_pearl_rejected(self):
        with pytest.raises(StructuralError, match="unknown pearl"):
            pearl_spec("WarpDrive")

    def test_metadata_attached(self):
        factory = pearl_spec("FirFilter", taps=(1,))
        assert factory.pearl_name == "FirFilter"
        assert factory.pearl_kwargs == {"taps": (1,)}


class TestRoundTrip:
    def test_structure_roundtrips(self):
        g = spec_graph()
        rebuilt = from_dict(to_dict(g))
        assert rebuilt.name == g.name
        assert set(rebuilt.nodes) == set(g.nodes)
        assert [(e.src, e.dst, e.relays) for e in rebuilt.edges] == \
            [(e.src, e.dst, e.relays) for e in g.edges]

    def test_behaviour_roundtrips(self):
        g = spec_graph()
        rebuilt = from_dict(to_dict(g))
        a = g.elaborate()
        b = rebuilt.elaborate()
        a.run(25)
        b.run(25)
        assert a.sinks["out"].payloads == b.sinks["out"].payloads

    def test_json_serializable(self):
        text = json.dumps(to_dict(spec_graph()))
        assert "FirFilter" in text

    def test_class_factories_serialize_by_name(self):
        g = SystemGraph("cls")
        g.add_source("src")
        g.add_shell("id", Identity)
        g.add_sink("out")
        g.add_edge("src", "id")
        g.add_edge("id", "out")
        rebuilt = from_dict(to_dict(g))
        system = rebuilt.elaborate()
        system.run(5)

    def test_custom_factory_needs_registry(self):
        g = SystemGraph("custom")
        g.add_source("src")
        g.add_shell("weird", lambda: Identity(initial=-9))
        g.add_sink("out")
        g.add_edge("src", "weird")
        g.add_edge("weird", "out")
        data = to_dict(g)
        with pytest.raises(StructuralError, match="custom pearl"):
            from_dict(data)
        rebuilt = from_dict(
            data, registry={"weird": lambda: Identity(initial=-9)})
        system = rebuilt.elaborate()
        system.run(3)
        assert system.sinks["out"].payloads[0] == -9

    def test_throughput_preserved(self):
        g = figure1()
        # figure1 uses class factories (Identity / Adder): serializable.
        rebuilt = from_dict(to_dict(g))
        assert system_throughput(rebuilt) == system_throughput(g)


class TestFiles:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "g.json"
        save_graph(spec_graph(), str(path))
        loaded = load_graph(str(path))
        assert loaded.relay_count() == 2

    def test_saved_file_is_pretty_json(self, tmp_path):
        path = tmp_path / "g.json"
        save_graph(spec_graph(), str(path))
        data = json.loads(path.read_text())
        assert data["name"] == "spec"
        assert len(data["edges"]) == 3

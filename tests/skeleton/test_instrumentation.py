"""Direct tests of the skeleton's stop-activity instrumentation."""

import pytest

from repro.graph import figure1, pipeline, reconvergent
from repro.lid.variant import ProtocolVariant
from repro.skeleton import SkeletonSim

CASU = ProtocolVariant.CASU
CARLONI = ProtocolVariant.CARLONI


def run(graph, variant, cycles=150, sinks=None, sources=None):
    sim = SkeletonSim(graph, variant=variant, sink_patterns=sinks,
                      source_patterns=sources, detect_ambiguity=False)
    for _ in range(cycles):
        sim.step()
    return sim


class TestCounters:
    def test_free_running_pipeline_has_no_stops(self):
        sim = run(pipeline(3), CASU)
        assert sim.stop_assertions_total == 0
        assert sim.stops_on_voids_total == 0
        assert sim.internal_stops_on_voids_total == 0

    def test_backpressure_counts_stops(self):
        sim = run(pipeline(3), CASU, sinks={"out": (False, True)})
        assert sim.stop_assertions_total > 0

    def test_reconvergence_generates_internal_stops(self):
        # Figure 1's implicit loop asserts stops every period even with
        # a friendly sink.
        sim = run(figure1(), CASU)
        assert sim.stop_assertions_total > 0

    def test_casu_internal_voids_zero(self):
        sim = run(reconvergent(long_relays=(2, 1), short_relays=1),
                  CASU,
                  sinks={"out": (False, True, True)},
                  sources={"src": (True, True, False)})
        assert sim.internal_stops_on_voids_total == 0

    def test_carloni_internal_voids_positive(self):
        sim = run(reconvergent(long_relays=(2, 1), short_relays=1),
                  CARLONI,
                  sinks={"out": (False, True, True)},
                  sources={"src": (True, True, False)})
        assert sim.internal_stops_on_voids_total > 0

    def test_internal_subset_of_total(self):
        for variant in (CASU, CARLONI):
            sim = run(figure1(), variant,
                      sinks={"out": (False, True)})
            assert sim.internal_stops_on_voids_total <= \
                sim.stops_on_voids_total <= sim.stop_assertions_total

    def test_counters_reset(self):
        sim = run(figure1(), CARLONI, sinks={"out": (True, False)})
        assert sim.stop_assertions_total > 0
        sim.reset()
        assert sim.stop_assertions_total == 0
        assert sim.stops_on_voids_total == 0
        assert sim.internal_stops_on_voids_total == 0

    def test_counters_monotone_over_time(self):
        sim = SkeletonSim(figure1(), variant=CARLONI,
                          sink_patterns={"out": (False, True)},
                          detect_ambiguity=False)
        previous = 0
        for _ in range(60):
            sim.step()
            assert sim.stop_assertions_total >= previous
            previous = sim.stop_assertions_total

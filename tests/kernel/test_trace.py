"""Unit tests for tracing."""

import pytest

from repro.kernel.component import Component
from repro.kernel.scheduler import Simulator
from repro.kernel.trace import Trace


class Emitter(Component):
    def __init__(self, name, sig, series):
        super().__init__(name)
        self.sig = sig
        self.series = series
        self.index = 0

    def reset(self):
        self.index = 0

    def publish(self):
        self.sig.set(self.series[self.index % len(self.series)])

    def tick(self):
        self.index += 1


def make_sim():
    sim = Simulator()
    a = sim.signal("a")
    b = sim.signal("b")
    sim.add_component(Emitter("ea", a, [1, 2, 3]))
    sim.add_component(Emitter("eb", b, [True, False]))
    return sim, a, b


class TestTrace:
    def test_records_one_row_per_cycle(self):
        sim, a, b = make_sim()
        trace = Trace(sim, [a, b])
        sim.step(4)
        assert len(trace) == 4
        assert trace.cycles == [0, 1, 2, 3]

    def test_column_values(self):
        sim, a, b = make_sim()
        trace = Trace(sim, [a, b])
        sim.step(3)
        assert trace.column("a") == [1, 2, 3]
        assert trace.column("b") == [True, False, True]

    def test_column_unknown_raises(self):
        sim, a, b = make_sim()
        trace = Trace(sim, [a])
        sim.step(1)
        with pytest.raises(KeyError):
            trace.column("b")

    def test_row_by_cycle(self):
        sim, a, b = make_sim()
        trace = Trace(sim, [a, b])
        sim.step(2)
        assert trace.row(1) == {"a": 2, "b": False}

    def test_row_missing_cycle_raises(self):
        sim, a, b = make_sim()
        trace = Trace(sim, [a])
        sim.step(1)
        with pytest.raises(KeyError):
            trace.row(7)

    def test_signals_by_name(self):
        sim, a, b = make_sim()
        trace = Trace(sim, ["a"])
        sim.step(2)
        assert trace.names == ["a"]

    def test_unknown_name_raises(self):
        sim, _a, _b = make_sim()
        with pytest.raises(KeyError):
            Trace(sim, ["zzz"])

    def test_format_table_contains_values(self):
        sim, a, b = make_sim()
        trace = Trace(sim, [a, b])
        sim.step(2)
        text = trace.format_table()
        assert "cycle" in text
        assert "a" in text and "b" in text
        # booleans render as 0/1, None as '.'
        assert "1" in text and "0" in text

    def test_format_table_max_rows(self):
        sim, a, b = make_sim()
        trace = Trace(sim, [a])
        sim.step(5)
        text = trace.format_table(max_rows=2)
        # header + separator + 2 rows + elision footer
        assert text.count("\n") == 4
        assert text.endswith("... 3 more rows")

    def test_format_table_no_footer_when_nothing_elided(self):
        sim, a, b = make_sim()
        trace = Trace(sim, [a])
        sim.step(3)
        assert "more rows" not in trace.format_table(max_rows=3)
        assert "more rows" not in trace.format_table()

    def test_column_keyerror_names_available_signals(self):
        sim, a, b = make_sim()
        trace = Trace(sim, [a, b])
        sim.step(1)
        with pytest.raises(KeyError, match="traced signals"):
            trace.column("zzz")
        try:
            trace.column("zzz")
        except KeyError as error:
            message = str(error)
            assert a.name in message and b.name in message

    def test_row_keyerror_names_recorded_span(self):
        sim, a, b = make_sim()
        trace = Trace(sim, [a])
        sim.step(3)
        with pytest.raises(KeyError, match="span 0..2"):
            trace.row(99)

    def test_row_keyerror_on_empty_trace(self):
        sim, a, b = make_sim()
        trace = Trace(sim, [a])
        with pytest.raises(KeyError, match="no cycles recorded"):
            trace.row(0)

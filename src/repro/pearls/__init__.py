"""Pearl library: stallable synchronous cores for shells to wrap.

The paper's methodology takes an existing design "that works under the
assumption of zero-delay connections" and encapsulates its modules.
This package provides such modules: pure-function datapaths
(:mod:`~repro.pearls.arithmetic`), stateful cores
(:mod:`~repro.pearls.state`) and DSP blocks (:mod:`~repro.pearls.dsp`),
plus the generic :class:`FunctionPearl` escape hatch.
"""

from .arithmetic import Adder, Alu, Identity, Maximum, Multiplier, Scaler, Subtractor
from .base import FunctionPearl, MultiOutputPearl, Pearl
from .dsp import Butterfly, Decimator, FirFilter, IirFilter, Mac, MovingAverage
from .state import Accumulator, Counter, Delay, Fibonacci, History, Toggle

__all__ = [
    "Accumulator",
    "Adder",
    "Alu",
    "Butterfly",
    "Counter",
    "Decimator",
    "Delay",
    "Fibonacci",
    "FirFilter",
    "FunctionPearl",
    "History",
    "Identity",
    "IirFilter",
    "Mac",
    "Maximum",
    "MovingAverage",
    "MultiOutputPearl",
    "Multiplier",
    "Pearl",
    "Scaler",
    "Subtractor",
    "Toggle",
]

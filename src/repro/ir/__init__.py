"""Canonical lowered IR: one graph -> backend construction path.

``repro.ir`` sits between the topology layer (:mod:`repro.graph`) and
every consumer of a topology: lid elaboration, the scalar and
vectorized skeleton engines, the analysis walkers and the exec cache.
:func:`lower` normalizes a :class:`~repro.graph.model.SystemGraph`
into a frozen :class:`LoweredSystem` — integer-indexed node/edge/
relay/hop tables with relay chains fully expanded, capability flags
and a canonical structural fingerprint — and every backend builds from
those tables instead of re-walking the graph.

Layering: this package imports only ``repro.graph`` / ``repro.errors``
(enforced by ``tools/check_layering.py``); calls that must construct
lid objects go through :mod:`repro._registry`.  See docs/ir.md.
"""

from .lowering import (
    RS_BRIDGE,
    RS_FULL,
    RS_HALF,
    RS_HALF_REG,
    RS_KIND_TAG,
    SHELL,
    SINK,
    SRC,
    STATS,
    IRBridge,
    IRDomain,
    IREdge,
    IRHop,
    IRNode,
    IRRelay,
    LoweredSystem,
    LowerStats,
    firing_schedule,
    lower,
    structural_fingerprint,
)
from .planes import pack_planes, plane_words, unpack_planes
from .passes import (
    Pass,
    PassPipeline,
    PassRecord,
    cure_deadlock_pass,
    desugar_queues_pass,
    equalize_pass,
    insert_relay_pass,
    promote_half_relays_pass,
)

__all__ = [
    "IRBridge",
    "IRDomain",
    "IREdge",
    "IRHop",
    "IRNode",
    "IRRelay",
    "LoweredSystem",
    "LowerStats",
    "Pass",
    "PassPipeline",
    "PassRecord",
    "RS_BRIDGE",
    "RS_FULL",
    "RS_HALF",
    "RS_HALF_REG",
    "RS_KIND_TAG",
    "SHELL",
    "SINK",
    "SRC",
    "STATS",
    "cure_deadlock_pass",
    "desugar_queues_pass",
    "equalize_pass",
    "firing_schedule",
    "insert_relay_pass",
    "lower",
    "pack_planes",
    "plane_words",
    "promote_half_relays_pass",
    "structural_fingerprint",
    "unpack_planes",
]

"""Deterministic process-pool fan-out: ``map_deterministic``.

The contract that makes ``--jobs N`` safe for byte-reproducible
reports: the result of ``map_deterministic(fn, units, jobs)`` is the
exact list ``[fn(u) for u in units]`` for *every* value of ``jobs`` —
same elements, same order.  Parallelism changes only the wall clock.

How that is achieved:

* units are split into **contiguous chunks** in input order (no
  work-stealing, no as-completed reordering);
* every chunk is submitted up front and the futures are drained in
  **submission order**, so the merged list is the concatenation of the
  chunk results in their original positions;
* worker exceptions are pickled back by :mod:`concurrent.futures` and
  re-raised here with their original type — a campaign worker that
  raises :class:`repro.errors.InjectionError` surfaces as an
  ``InjectionError``, not as some pool wrapper;
* a worker process that *dies* (rather than raises) surfaces as
  :class:`repro.errors.WorkerCrashError`, keeping the
  :class:`repro.errors.ReproError` taxonomy closed.

``fn`` and every unit must be picklable (module-level functions,
``functools.partial`` of module-level functions, frozen dataclasses).
For callables that must be named across the process boundary there is
the :class:`WorkUnit` indirection: ``"module:qualname"`` plus args.
"""

from __future__ import annotations

import dataclasses
import importlib
import math
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from ..errors import ExecutionError, WorkerCrashError


def _run_chunk(fn: Callable[[Any], Any], chunk: Sequence[Any]) -> List[Any]:
    """Worker-side body: apply *fn* to one contiguous chunk, in order."""
    return [fn(unit) for unit in chunk]


def chunk_units(units: Sequence[Any], jobs: int,
                chunk_size: Optional[int] = None) -> List[Sequence[Any]]:
    """Split *units* into contiguous chunks (deterministic in inputs).

    The default size aims at ~4 chunks per worker: big enough to
    amortize pickling, small enough that one slow chunk cannot idle the
    other workers for long.  The split depends only on ``(len(units),
    jobs, chunk_size)`` — never on timing.
    """
    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(units) / (jobs * 4)))
    if chunk_size < 1:
        raise ExecutionError(f"chunk_size must be >= 1, got {chunk_size}")
    return [units[i:i + chunk_size]
            for i in range(0, len(units), chunk_size)]


def plane_chunks(units: Sequence[Any],
                 width: int = 64) -> List[Sequence[Any]]:
    """Split *units* into bit-plane groups for the bitsim engine.

    Each group holds at most ``width - 1`` units: the campaign packs a
    golden (fault-free) baseline into plane 0 of every group, so a
    group of 63 experiments plus its golden fills one 64-bit machine
    word — Python integers beyond that are exact but slower.  The
    split depends only on ``(len(units), width)``, never on timing, so
    chunked campaigns stay byte-reproducible.
    """
    if width < 2:
        raise ExecutionError(f"width must be >= 2, got {width}")
    per_group = width - 1
    return [units[i:i + per_group]
            for i in range(0, len(units), per_group)]


def map_deterministic(
    fn: Callable[[Any], Any],
    units: Iterable[Any],
    jobs: int = 1,
    *,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """``[fn(u) for u in units]``, fanned across *jobs* processes.

    ``jobs <= 1`` (the default) runs serially in-process — no pool, no
    pickling, no spawn cost; this is also the reference semantics the
    parallel path must reproduce byte-for-byte.
    """
    units = list(units)
    if jobs is None or jobs <= 1 or len(units) <= 1:
        return [fn(unit) for unit in units]

    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    jobs = min(jobs, len(units))
    chunks = chunk_units(units, jobs, chunk_size)
    results: List[Any] = []
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_run_chunk, fn, chunk)
                       for chunk in chunks]
            for future in futures:
                results.extend(future.result())
    except BrokenProcessPool as exc:
        raise WorkerCrashError(
            f"a worker process died while mapping {len(units)} units "
            f"across {jobs} jobs (chunk results already merged: "
            f"{len(results)})") from exc
    return results


@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """A picklable, self-describing unit of work.

    ``fn`` names a module-level callable as ``"module:qualname"``; the
    worker resolves it with :func:`resolve_callable` and applies the
    args.  Use this when the callable itself cannot be captured in a
    closure/partial (or when units must be serialized to disk, e.g. a
    campaign manifest).
    """

    fn: str
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def __call__(self) -> Any:
        return run_unit(self)


def resolve_callable(ref: str) -> Callable[..., Any]:
    """``"module:qualname"`` -> the callable, or :class:`ExecutionError`."""
    module_name, sep, qualname = ref.partition(":")
    if not sep or not module_name or not qualname:
        raise ExecutionError(
            f"work-unit callable reference must be 'module:qualname', "
            f"got {ref!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ExecutionError(
            f"cannot import module {module_name!r} for work unit "
            f"{ref!r}: {exc}") from exc
    obj: Any = module
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError:
            raise ExecutionError(
                f"{module_name!r} has no attribute path {qualname!r} "
                f"(work unit {ref!r})") from None
    if not callable(obj):
        raise ExecutionError(f"work unit {ref!r} is not callable")
    return obj


def run_unit(unit: WorkUnit) -> Any:
    """Execute one :class:`WorkUnit` (worker-side entry point)."""
    fn = resolve_callable(unit.fn)
    return fn(*unit.args, **dict(unit.kwargs))

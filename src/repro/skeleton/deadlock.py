"""Deadlock checking via skeleton simulation.

The paper's liveness strategy: liveness is topology dependent, so
instead of verifying the protocol globally, *"simulate the system up to
the transient's extinction; either the deadlock will show, or will be
forever avoided"* — on the cheap valid/stop skeleton.

Two failure modes are distinguished:

* **hard deadlock** — under the optimistic (least-fixpoint) resolution
  of the stop network, the periodic regime contains zero shell firings:
  no block will ever fire again;
* **potential deadlock** — the stop equations admit more than one
  fixpoint in some reachable cycle (only possible when a combinational
  stop cycle exists, i.e. half relay stations — or direct shell-shell
  wires — on loops), or the pessimistic (greatest-fixpoint) resolution
  stalls even though the optimistic one runs.  Real gates could settle
  either way, so the design is hazardous: this is the paper's
  *"potential deadlocks iff half relay stations are present in loops"*.

Because simulation runs until state periodicity, the verdict is exact
for the given source/sink scripts — the paper's "forever avoided"
guarantee.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from ..graph.model import SystemGraph
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from .sim import SkeletonResult, SkeletonSim


@dataclasses.dataclass
class DeadlockVerdict:
    """Outcome of :func:`check_deadlock`.

    ``inconclusive`` marks a run whose cycle budget expired before the
    skeleton state became periodic: nothing can be said about liveness
    either way (``optimistic`` is then ``None`` and ``transient`` /
    ``period`` are ``-1`` / ``0``).  Raise ``max_cycles`` to resolve it.
    """

    deadlocked: bool
    potential: bool
    transient: int
    period: int
    detail: str
    optimistic: Optional[SkeletonResult] = None
    pessimistic: Optional[SkeletonResult] = None
    inconclusive: bool = False

    @property
    def live(self) -> bool:
        """Fully live: neither hard nor potential deadlock was proven.

        An inconclusive verdict is *not* live: the check never reached
        the periodic regime that would justify the paper's "forever
        avoided" claim.
        """
        return (not self.deadlocked and not self.potential
                and not self.inconclusive)


def check_deadlock(
    graph: SystemGraph,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    max_cycles: int = 10_000,
    source_patterns: Optional[Dict[str, Sequence[bool]]] = None,
    sink_patterns: Optional[Dict[str, Sequence[bool]]] = None,
) -> DeadlockVerdict:
    """Simulate the skeleton until periodicity and classify liveness.

    When no periodic regime appears within *max_cycles* the verdict is
    ``inconclusive`` (not a raised :class:`TimeoutError`): callers get a
    one-line diagnostic in ``detail`` and can retry with a larger
    budget.
    """
    from ..errors import PeriodicityTimeout

    optimistic_sim = SkeletonSim(
        graph,
        variant=variant,
        fixpoint="least",
        source_patterns=source_patterns,
        sink_patterns=sink_patterns,
    )
    try:
        optimistic = optimistic_sim.run(max_cycles=max_cycles)
    except PeriodicityTimeout:
        return DeadlockVerdict(
            deadlocked=False,
            potential=False,
            transient=-1,
            period=0,
            detail=(
                f"inconclusive: no periodic regime within {max_cycles} "
                f"cycles — raise --max-cycles to let the transient "
                f"extinguish"
            ),
            inconclusive=True,
        )

    pessimistic = None
    potential = optimistic.potential
    detail = ""
    if optimistic.deadlocked:
        detail = (
            f"hard deadlock: periodic window of {optimistic.period} cycles "
            f"after cycle {optimistic.transient} contains no shell firing"
        )
    elif potential:
        detail = (
            f"stop network ambiguous from cycle "
            f"{optimistic.potential_deadlock_cycle}: least and greatest "
            f"fixpoints disagree (combinational stop cycle is active)"
        )
    if optimistic_sim._may_be_ambiguous and not optimistic.deadlocked:
        pessimistic_sim = SkeletonSim(
            graph,
            variant=variant,
            fixpoint="greatest",
            source_patterns=source_patterns,
            sink_patterns=sink_patterns,
        )
        try:
            pessimistic = pessimistic_sim.run(max_cycles=max_cycles)
        except PeriodicityTimeout:
            return DeadlockVerdict(
                deadlocked=False,
                potential=potential,
                transient=optimistic.transient,
                period=optimistic.period,
                detail=(
                    f"inconclusive: pessimistic stop resolution found no "
                    f"periodic regime within {max_cycles} cycles"
                ),
                optimistic=optimistic,
                inconclusive=True,
            )
        if pessimistic.deadlocked and not potential:
            potential = True
            detail = (
                "pessimistic stop resolution deadlocks although the "
                "optimistic one runs: hazardous combinational stop cycle"
            )

    return DeadlockVerdict(
        deadlocked=optimistic.deadlocked,
        potential=potential,
        transient=optimistic.transient,
        period=optimistic.period,
        detail=detail or "live: periodic regime fires every shell",
        optimistic=optimistic,
        pessimistic=pessimistic,
    )


def is_deadlock_free_class(graph: SystemGraph) -> Optional[str]:
    """Static sufficient conditions for deadlock freedom (paper's list).

    Returns the name of the first matching rule, or ``None`` when no
    static rule applies (the system then needs the skeleton check):

    * ``"feed-forward"`` — the block graph is acyclic (possibly with
      reconvergence);
    * ``"all-full-relay-stations"`` — every relay station is full.
    """
    if graph.is_feedforward():
        return "feed-forward"
    if graph.relay_count() == graph.relay_count("full"):
        return "all-full-relay-stations"
    from .. import graph as _graph_pkg  # local import to avoid a cycle

    if not _graph_pkg.half_relays_on_loops(graph):
        return "no-half-relay-stations-on-loops"
    return None

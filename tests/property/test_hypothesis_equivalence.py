"""Property-based latency equivalence over randomized systems.

The flagship property: for random topologies, random relay mixes,
random back-pressure scripts and random (gappy) source streams, every
elaborated LID system's sink streams project onto the zero-latency
reference.  This is the paper's safety definition under fuzzing.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph import random_dag, random_loopy
from repro.lid.reference import is_prefix
from repro.lid.variant import ProtocolVariant

pytestmark = pytest.mark.slow

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

stop_scripts = st.one_of(
    st.none(),
    st.tuples(st.integers(2, 5), st.integers(0, 4)).map(
        lambda p: (lambda c, period=p[0], phase=p[1]:
                   c % period == phase)
    ),
)

source_patterns = st.lists(
    st.one_of(st.integers(0, 100), st.none()), min_size=5, max_size=30)


def check(graph, cycles, stop_script=None, source_pattern=None):
    for sink_node in graph.sinks():
        sink_node.stop_script = stop_script
    if source_pattern is not None:
        for src_node in graph.sources():
            pattern = list(source_pattern)
            src_node.stream_factory = (
                lambda p=pattern: __import__(
                    "repro.lid.endpoints",
                    fromlist=["scripted_stream"]).scripted_stream(p)
            )
    system = graph.elaborate()
    system.run(cycles)
    reference = system.reference_outputs(cycles)
    for name, sink in system.sinks.items():
        assert is_prefix(sink.payloads, reference[name]), name


@given(seed=st.integers(0, 10_000), stop_script=stop_scripts)
@settings(**SETTINGS)
def test_random_dag_equivalence(seed, stop_script):
    check(random_dag(seed, shells=4), cycles=50, stop_script=stop_script)


@given(seed=st.integers(0, 10_000), stop_script=stop_scripts)
@settings(**SETTINGS)
def test_random_loopy_equivalence(seed, stop_script):
    check(random_loopy(seed, shells=3), cycles=50,
          stop_script=stop_script)


@given(seed=st.integers(0, 10_000), pattern=source_patterns)
@settings(**SETTINGS)
def test_gappy_sources_equivalence(seed, pattern):
    check(random_dag(seed, shells=3), cycles=40, source_pattern=pattern)


@given(seed=st.integers(0, 10_000),
       half_probability=st.floats(0.0, 1.0))
@settings(**SETTINGS)
def test_half_relay_mix_equivalence(seed, half_probability):
    graph = random_dag(seed, shells=4, half_probability=half_probability)
    check(graph, cycles=40)


@given(seed=st.integers(0, 10_000))
@settings(**SETTINGS)
def test_variants_both_equivalent(seed):
    graph = random_dag(seed, shells=3)
    for variant in ProtocolVariant:
        system = graph.elaborate(variant=variant)
        system.run(40)
        reference = system.reference_outputs(40)
        for name, sink in system.sinks.items():
            assert is_prefix(sink.payloads, reference[name]), \
                (variant, name)

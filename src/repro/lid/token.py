"""Tokens: the unit of information travelling on LID channels.

A latency-insensitive channel carries, each clock cycle, either a *valid*
datum or a *void* (the paper renders voids as ``N`` in its figures; the
literature also calls them tau events or bubbles).  A :class:`Token`
pairs the payload with the valid bit so block implementations can move
both together.

Tokens are immutable value objects; ``VOID`` is the canonical invalid
token.
"""

from __future__ import annotations

from typing import Any


class Token:
    """An immutable (payload, valid) pair.

    ``Token(x)`` makes a valid token carrying ``x``; ``Token.void()``
    (or the module-level ``VOID``) is the invalid token.  The payload of
    a void token is ``None`` by convention — the protocol never looks at
    it, mirroring hardware where the data wires are don't-care when
    ``valid`` is low.
    """

    __slots__ = ("value", "valid")

    def __init__(self, value: Any = None, valid: bool = True):
        object.__setattr__(self, "value", value if valid else None)
        object.__setattr__(self, "valid", bool(valid))

    def __setattr__(self, name, _value):  # pragma: no cover - guard
        raise AttributeError(f"Token is immutable; cannot set {name!r}")

    @staticmethod
    def void() -> "Token":
        """The invalid token."""
        return VOID

    @property
    def void_p(self) -> bool:
        """True when the token is invalid (a bubble)."""
        return not self.valid

    def __eq__(self, other) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        if not self.valid and not other.valid:
            return True
        return self.valid == other.valid and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.valid, self.value))

    def __repr__(self) -> str:
        if not self.valid:
            return "Token.void()"
        return f"Token({self.value!r})"

    def __str__(self) -> str:
        # Matches the rendering used in the paper's figures.
        return "N" if not self.valid else str(self.value)


#: The canonical void token.
VOID = Token(valid=False)


def valid_stream(values) -> list:
    """Wrap an iterable of payloads into a list of valid tokens."""
    return [Token(v) for v in values]


def payloads(tokens) -> list:
    """Extract the payloads of the valid tokens, discarding voids.

    This is the *latency-equivalence projection* from the LID theory:
    two streams are latency equivalent iff their projections are equal.
    """
    return [t.value for t in tokens if t.valid]

"""Gate-level views: netlists, relay-station FSMs, shells, VHDL export."""

from .elaborate import NetlistRelayStation, transplant_netlist_station
from .fsm_view import (
    FsmTransition,
    extract_full_rs_fsm,
    extract_half_rs_fsm,
    format_fsm_table,
    fsm_to_dot,
)
from .netlist import CELL_TYPES, Cell, Net, Netlist, NetlistSimulator
from .relay_fsm import (
    RS_INPUTS,
    RS_OUTPUTS,
    full_relay_station_netlist,
    half_relay_station_netlist,
)
from .shell_rtl import identity_shell_netlist, shell_netlist
from .vhdl import emit_vhdl, write_vhdl

__all__ = [
    "CELL_TYPES",
    "Cell",
    "FsmTransition",
    "Net",
    "Netlist",
    "NetlistRelayStation",
    "NetlistSimulator",
    "RS_INPUTS",
    "RS_OUTPUTS",
    "emit_vhdl",
    "extract_full_rs_fsm",
    "extract_half_rs_fsm",
    "format_fsm_table",
    "fsm_to_dot",
    "full_relay_station_netlist",
    "half_relay_station_netlist",
    "identity_shell_netlist",
    "shell_netlist",
    "transplant_netlist_station",
    "write_vhdl",
]

"""Closed-form throughput formulas from the paper.

Three results, each implemented and cross-validated against skeleton
simulation by the EXP-T benches:

* **Trees** — throughput 1 (every node fires every cycle after the
  transient).
* **Reconvergent feed-forward** — ``T = (m - i)/m`` where ``i`` is the
  relay-station imbalance between the reconvergent branches and ``m`` is
  the total number of relay stations in the implicit loop (closed by
  the short branch's back pressure) plus the number of shells on the
  branch with the most relay stations.  In slot terms, ``m`` counts the
  storage positions around the implicit loop: the relay stations of
  both branches plus the output registers of the shells feeding the
  long branch (divergence node included, join node excluded) — for the
  paper's Figure 1, m = 3 + 2 = 5 and i = 1, giving T = 4/5.
* **Feedback loops** — ``T = S/(S+R)``: at most S valid tokens circulate
  among S+R storage positions.

The general case (arbitrary compositions) is handled by
:mod:`repro.analysis.mcr`; the formulas here are the fast paths and the
paper-faithful statements.

**Mixed-rate (GALS) extension.**  With rational clock domains the
single-clock formulas gain a rate cap: no element can fire faster than
its domain ticks, so system throughput (measured in base-clock cycles)
is bounded by ``min_d rate_d``.  For *feed-forward* GALS compositions
whose bridges all have depth >= 2 the bound is exact — the slowest
domain drains the bridges feeding it and back-pressure throttles every
faster domain down to it.  A **depth-1 bridge** adds its own certified
cap of 1/2: with a single slot, a read (needs occupancy 1) and a write
(needs occupancy 0) can never share a cycle, so transfers strictly
alternate — the bisynchronous analogue of the paper's half-relay
penalty.  For *cyclic* GALS compositions no closed form exists: the
steady state locks onto an alignment of the domain firing schedules
around the loop, producing rates (e.g. 5/18, 13/30) that depend on the
schedule phases, not just on slot counts.
:func:`static_system_throughput` therefore returns the certified upper
bound ``min(min_d rate_d, 1/2 if any depth-1 bridge, min over loops
S/(S+R))`` for GALS graphs, and :func:`simulated_throughput` gives the
exact value the paper's way — by running the cheap skeleton to its
periodic regime.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..errors import AnalysisError
from ..graph.model import SystemGraph
from ..ir import LoweredSystem, lower


def _as_lowered(graph: "SystemGraph | LoweredSystem") -> LoweredSystem:
    """Every analysis entry point accepts a graph or its lowering."""
    return graph if isinstance(graph, LoweredSystem) else lower(graph)


def domain_rate_bound(graph: "SystemGraph | LoweredSystem") -> Fraction:
    """``min_d rate_d`` — the clock-rate cap on system throughput.

    Every shell firing needs its domain enabled, so no sustained rate
    can exceed the slowest domain's rate.  Single-clock systems (no
    declared domains, or all at rate 1) return 1, leaving the
    single-clock formulas unchanged.
    """
    low = _as_lowered(graph)
    if not low.domains:
        return Fraction(1)
    return min(Fraction(d.rate) for d in low.domains)


def loop_throughput(shells: int, relays: int) -> Fraction:
    """T = S/(S+R) for a feedback loop (paper / Carloni DAC'00)."""
    if shells < 1:
        raise AnalysisError("a loop needs at least one shell")
    if relays < 0:
        raise AnalysisError("negative relay count")
    return Fraction(shells, shells + relays)


def reconvergent_throughput(imbalance: int, loop_positions: int) -> Fraction:
    """T = (m - i)/m for a reconvergent feed-forward pair."""
    if loop_positions < 1:
        raise AnalysisError("m must be positive")
    if imbalance < 0 or imbalance > loop_positions:
        raise AnalysisError(f"imbalance {imbalance} out of range for m={loop_positions}")
    return Fraction(loop_positions - imbalance, loop_positions)


def tree_throughput(graph: SystemGraph) -> Fraction:
    """Throughput 1 — after checking the graph really is a tree.

    A tree here means: acyclic and no reconvergence (at most one simple
    path between any ordered node pair).
    """
    low = _as_lowered(graph)
    if not low.is_feedforward():
        raise AnalysisError(f"{low.name} has loops; not a tree")
    if reconvergence_pairs(low):
        raise AnalysisError(f"{low.name} has reconvergent paths; not a tree")
    return Fraction(1)


# -- reconvergence extraction ---------------------------------------------


def reconvergence_pairs(graph: SystemGraph) -> List[Tuple[str, str]]:
    """(divergence, join) node pairs with >= 2 disjoint directed paths.

    Only shells/sources qualify as divergence points and only shells as
    joins (a sink has a single input channel).
    """
    low = _as_lowered(graph)
    g = low.block_digraph()
    pairs: List[Tuple[str, str]] = []
    for div_node in low.nodes:
        if div_node.kind == "sink":
            continue
        div = div_node.name
        for join_node in low.nodes:
            join = join_node.name
            if join == div or join_node.kind != "shell":
                continue
            if len(low.in_edges(join)) < 2:
                continue
            try:
                paths = list(nx.node_disjoint_paths(g, div, join))
            except nx.NetworkXNoPath:
                continue
            if len(paths) >= 2:
                pairs.append((div, join))
    return pairs


def _path_relay_count(low: LoweredSystem, path: Sequence[str]) -> int:
    total = 0
    for a, b in zip(path, path[1:]):
        candidates = [e.relay_count for e in low.edges
                      if e.src_name == a and e.dst_name == b]
        if not candidates:
            raise AnalysisError(f"no edge {a!r}->{b!r} on path")
        total += min(candidates)
    return total


def analyze_reconvergence(
    graph: SystemGraph,
    divergence: str,
    join: str,
) -> Tuple[int, int, Fraction]:
    """Apply the paper's formula to one reconvergent pair.

    Returns ``(i, m, T)``.  The two branches are taken as a pair of
    node-disjoint paths between *divergence* and *join*; with more than
    two branches the extreme pair (most vs fewest relay stations)
    determines the throughput.
    """
    low = _as_lowered(graph)
    g = low.block_digraph()
    try:
        paths = list(nx.node_disjoint_paths(g, divergence, join))
    except nx.NetworkXNoPath:
        raise AnalysisError(f"no path {divergence!r} -> {join!r}") from None
    if len(paths) < 2:
        raise AnalysisError(
            f"{divergence!r} -> {join!r} is not reconvergent "
            f"(only {len(paths)} disjoint path)"
        )
    counted = [( _path_relay_count(low, p), p) for p in paths]
    # Tie-break equal relay counts by path length so the branch with
    # more shells is treated as the long one (m is well defined; T is
    # unaffected since i = 0 on ties).
    counted.sort(key=lambda pair: (pair[0], len(pair[1])))
    short_relays, _short_path = counted[0]
    long_relays, long_path = counted[-1]
    imbalance = long_relays - short_relays
    # Storage positions on the implicit loop: all relay stations of both
    # branches, plus the output registers of the shells feeding the long
    # branch (divergence node included when it is a shell, join excluded).
    shells_on_long = sum(
        1 for name in long_path[:-1] if low.node(name).kind == "shell"
    )
    m = long_relays + short_relays + shells_on_long
    return imbalance, m, reconvergent_throughput(imbalance, m)


def analyze_loops(graph: SystemGraph) -> Dict[Tuple[str, ...], Fraction]:
    """S/(S+R) for every simple cycle of the block graph."""
    low = _as_lowered(graph)
    result: Dict[Tuple[str, ...], Fraction] = {}
    for cycle in low.shell_cycles():
        shells, relays = low.loop_census(cycle)
        result[tuple(cycle)] = loop_throughput(shells, relays)
    return result


def _sweep_chunk(args) -> List[Dict[str, Fraction]]:
    """One worker's slice of a throughput sweep (module-level: pickling)."""
    graph_ref, sinks, sources, variant, max_cycles, backend = args
    return throughput_sweep(
        graph_ref.materialize(), sink_patterns=sinks,
        source_patterns=sources, variant=variant,
        max_cycles=max_cycles, backend=backend)


def throughput_sweep(
    graph: SystemGraph,
    sink_patterns: Optional[Sequence[Dict[str, Sequence[bool]]]] = None,
    source_patterns: Optional[Sequence[Dict[str, Sequence[bool]]]] = None,
    variant=None,
    max_cycles: int = 10_000,
    backend: str = "auto",
    *,
    jobs: int = 1,
    graph_ref=None,
    progress=None,
) -> List[Dict[str, Fraction]]:
    """Exact steady-state rates for a whole scenario sweep at once.

    One topology, many environment scripts: each entry of
    *sink_patterns* / *source_patterns* describes one instance of the
    design-space sweep (back-pressure scripts, source availability).
    The simulation runs through :func:`repro.skeleton.backend.select`,
    so a wide sweep costs roughly one scalar run (the paper's
    "absolutely negligible" skeleton cost, vectorized); results are
    exact fractions per shell and sink, per instance.

    ``jobs > 1`` splits the instance list into contiguous chunks, each
    simulated by a worker process (still batched inside the worker);
    results come back in instance order, identical to the serial sweep.
    Pass *graph_ref* when the graph itself does not pickle; without one
    an unpicklable graph silently degrades to the serial path, which
    returns the same list.

    *progress* (a :class:`repro.obs.ProgressReporter`) is advanced as
    instances are classified — per instance on the serial path, per
    completed worker chunk on the parallel one.  It never affects the
    returned rates.
    """
    from ..lid.variant import DEFAULT_VARIANT
    from ..skeleton.backend import select

    if (jobs > 1 and sink_patterns is not None
            and not isinstance(sink_patterns, dict)
            and len(sink_patterns) > 1):
        from ..errors import ExecutionError
        from ..exec import GraphRef, chunk_units, map_deterministic

        ref = graph_ref
        if ref is None:
            src_graph = (graph.graph if isinstance(graph, LoweredSystem)
                         else graph)
            try:
                ref = GraphRef.from_graph(src_graph)
            except ExecutionError:
                ref = None
        paired_sources = None
        if (source_patterns is not None
                and not isinstance(source_patterns, dict)
                and len(source_patterns) == len(sink_patterns)):
            paired_sources = list(source_patterns)
        if ref is not None:
            sinks = list(sink_patterns)
            work = []
            for idx_chunk in chunk_units(list(range(len(sinks))), jobs):
                chunk_sources = (
                    [paired_sources[i] for i in idx_chunk]
                    if paired_sources is not None else source_patterns)
                work.append((ref, [sinks[i] for i in idx_chunk],
                             chunk_sources, variant, max_cycles, backend))
            if progress is not None:
                # The parallel unit of completion is one worker chunk
                # of instances, not a single instance.
                progress.set_total(len(work))
            parts = map_deterministic(_sweep_chunk, work, jobs=jobs,
                                      progress=progress)
            if progress is not None:
                progress.finish()
            return [rates for part in parts for rates in part]

    handle = select(graph, variant or DEFAULT_VARIANT,
                    source_patterns=source_patterns,
                    sink_patterns=sink_patterns,
                    detect_ambiguity=False, backend=backend)
    results = handle.run(max_cycles=max_cycles)
    if progress is not None:
        progress.set_total(len(results))
    sweeps: List[Dict[str, Fraction]] = []
    for result in results:
        rates: Dict[str, Fraction] = {}
        for name, fires in result.shell_fires.items():
            rates[name] = (Fraction(fires, result.period)
                           if result.period else Fraction(0))
        for name, accepts in result.sink_accepts.items():
            rates[name] = (Fraction(accepts, result.period)
                           if result.period else Fraction(0))
        sweeps.append(rates)
        if progress is not None:
            progress.advance(1)
    if progress is not None:
        progress.finish()
    return sweeps


def effective_throughput(
    graph: SystemGraph,
    source_rates: Optional[Dict[str, Fraction]] = None,
    sink_rates: Optional[Dict[str, Fraction]] = None,
) -> Fraction:
    """System throughput under rate-limited endpoints.

    The protocol adapts to whatever is slowest: a source that offers
    tokens at rate p, a sink that accepts at rate q, or the topology's
    own ceiling.  For the single-rate systems of the paper the bound
    composes by min() — verified against skeleton simulation in
    ``tests/analysis/test_throughput.py``.
    """
    bound = static_system_throughput(graph)
    for rate in (source_rates or {}).values():
        bound = min(bound, Fraction(rate))
    for rate in (sink_rates or {}).values():
        bound = min(bound, Fraction(rate))
    return bound


def static_system_throughput(graph: SystemGraph) -> Fraction:
    """Best static estimate from the paper's closed-form results.

    The minimum over all feedback loops and all reconvergent pairs,
    capped at the domain-rate bound (1 for single-clock systems).  (The
    exact general answer — including interactions between
    sub-topologies — comes from :func:`repro.analysis.mcr.
    min_cycle_ratio_throughput`; the paper proves the slowest
    sub-topology dominates, which the EXP-T5 bench verifies.)

    For multi-clock (GALS) graphs the returned value is **exact for
    feed-forward compositions with bridge depths >= 2** and a
    **certified upper bound otherwise** — the S/(S+R) loop term ignores
    firing-schedule alignment and bridge latency, both of which can
    only slow a loop down, and a depth-1 bridge contributes its
    alternation cap of 1/2 (single-slot reads and writes exclude each
    other; schedule misalignment can push the true rate below even
    that).  The reconvergence formula is skipped for GALS graphs for
    the same reason; dropping an upper-bound term keeps the minimum an
    upper bound.  Use :func:`simulated_throughput` for exact mixed-rate
    values.
    """
    low = _as_lowered(graph)
    best = domain_rate_bound(low)
    if any(bridge.depth == 1 for bridge in low.bridges):
        best = min(best, Fraction(1, 2))
    for _cycle, rate in analyze_loops(low).items():
        best = min(best, rate)
    if low.single_clock:
        for div, join in reconvergence_pairs(low):
            try:
                _i, _m, rate = analyze_reconvergence(low, div, join)
            except AnalysisError:
                continue
            best = min(best, rate)
    return best


def simulated_throughput(
    graph: SystemGraph,
    variant=None,
    max_cycles: int = 10_000,
    backend: str = "auto",
) -> Fraction:
    """Exact steady-state system throughput from skeleton simulation.

    Runs the valid/stop skeleton to its periodic regime and returns the
    minimum sustained rate over every shell and sink, as an exact
    fraction of base-clock cycles.  This is the paper's own answer to
    topologies outside the closed forms — and for GALS compositions,
    where loop throughput depends on firing-schedule alignment, it is
    the only exact one.  Always agrees with
    :func:`static_system_throughput` on single-clock systems and on
    feed-forward GALS chains; on cyclic GALS graphs it refines the
    static upper bound to the true locked rate.
    """
    rates = throughput_sweep(graph, variant=variant,
                             max_cycles=max_cycles, backend=backend)[0]
    if not rates:
        raise AnalysisError(f"{graph.name}: no shells or sinks to rate")
    return min(rates.values())

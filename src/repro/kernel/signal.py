"""Signals: the wires of the cycle-accurate simulation kernel.

A :class:`Signal` carries one value per clock cycle.  During the
*settle* phase of a cycle, components write combinational values into
signals; the scheduler iterates settle passes until no signal changes
(a fixpoint).  During the *edge* phase, registered components sample the
settled values and update their internal state.

Signals are deliberately dumb: no drivers list, no resolution function.
Single-driver discipline is enforced structurally by the layers above
(see :mod:`repro.lid.lint`).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional


class Signal:
    """A named single-driver wire.

    Parameters
    ----------
    name:
        Hierarchical name used in traces and error messages.
    default:
        Value the signal assumes at the start of every settle phase unless
        a component drives it.  Backward-flowing ``stop`` wires default to
        ``False`` so the monotone fixpoint starts from the optimistic
        (least) assignment.
    sticky:
        If true, the signal keeps its value across settle-phase resets
        (used for Moore outputs, which are constant within a cycle).
    """

    __slots__ = ("name", "default", "sticky", "_value", "_changed")

    def __init__(self, name: str, default: Any = None, sticky: bool = False):
        self.name = name
        self.default = default
        self.sticky = sticky
        self._value = default
        self._changed = False

    @property
    def value(self) -> Any:
        """Current settled (or partially settled) value."""
        return self._value

    def set(self, value: Any) -> None:
        """Drive the signal; records whether the value actually changed."""
        if value != self._value:
            self._value = value
            self._changed = True

    def reset_for_settle(self) -> None:
        """Return to the default value at the start of a settle phase."""
        if not self.sticky:
            self._value = self.default
        self._changed = False

    def consume_changed(self) -> bool:
        """Return and clear the changed flag (used by the fixpoint loop)."""
        changed = self._changed
        self._changed = False
        return changed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, value={self._value!r})"


class SignalBundle:
    """A named, ordered collection of signals.

    Convenience container used by components that expose several related
    wires (e.g. a LID channel's ``data``, ``valid`` and ``stop``).
    """

    def __init__(self, name: str, signals: Optional[Iterable[Signal]] = None):
        self.name = name
        self._signals: list[Signal] = list(signals or [])

    def add(self, signal: Signal) -> Signal:
        self._signals.append(signal)
        return signal

    def __iter__(self):
        return iter(self._signals)

    def __len__(self) -> int:
        return len(self._signals)

    def values(self) -> list:
        """Snapshot of all member values, in insertion order."""
        return [s.value for s in self._signals]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SignalBundle({self.name!r}, n={len(self._signals)})"

"""Run-ledger tests: content addressing, atomic append, diff/resolve."""

import json
import multiprocessing

import pytest

from repro.obs import (
    LEDGER_SCHEMA,
    append_record,
    canonical_payload_bytes,
    default_ledger_path,
    diff_records,
    make_record,
    read_ledger,
    resolve_record,
    span_id,
)
from repro.obs.ledger import format_diff, format_ls


def _record(**overrides):
    kwargs = dict(
        topology="feedback",
        fingerprint="abc123",
        variant="casu",
        params={"cycles": 64, "seed": 0},
        verdict={"masked": 7, "deadlock": 1},
        git_rev="deadbeef",
        meta={"wall_seconds": 0.25, "jobs": 1},
    )
    kwargs.update(overrides)
    return make_record("inject-campaign", **kwargs)


class TestContentAddressing:
    def test_identical_runs_share_run_id_and_bytes(self):
        a, b = _record(), _record()
        assert a["run_id"] == b["run_id"]
        assert canonical_payload_bytes(a) == canonical_payload_bytes(b)

    def test_meta_is_excluded_from_identity(self):
        fast = _record(meta={"wall_seconds": 0.01, "jobs": 1})
        slow = _record(meta={"wall_seconds": 9.99, "jobs": 8})
        assert fast["run_id"] == slow["run_id"]
        assert canonical_payload_bytes(fast) == canonical_payload_bytes(slow)

    def test_any_key_component_changes_the_id(self):
        base = _record()
        assert _record(params={"cycles": 65, "seed": 0})["run_id"] \
            != base["run_id"]
        assert _record(git_rev="cafebabe")["run_id"] != base["run_id"]
        assert _record(fingerprint="fff")["run_id"] != base["run_id"]

    def test_span_is_pre_run_deterministic(self):
        # span depends on kind + design + params only — not on verdict.
        a = _record(verdict={"masked": 12})
        b = _record(verdict={"deadlock": 12})
        assert a["payload"]["span"] == b["payload"]["span"]
        assert a["payload"]["span"] == span_id(
            "inject-campaign", "abc123", "casu",
            {"cycles": 64, "seed": 0})

    def test_canonical_bytes_are_one_ascii_json_line(self):
        data = canonical_payload_bytes(_record())
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1
        assert json.loads(data)["kind"] == "inject-campaign"

    def test_schema_stamp(self):
        assert _record()["schema"] == LEDGER_SCHEMA


class TestAppendAndRead:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        first = _record()
        second = _record(params={"cycles": 128, "seed": 0})
        assert append_record(path, first) == first["run_id"]
        assert append_record(path, second) == second["run_id"]
        records = read_ledger(path)
        assert [r["run_id"] for r in records] \
            == [first["run_id"], second["run_id"]]
        assert records[0]["payload"] == first["payload"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_ledger(str(tmp_path / "absent.jsonl")) == []

    def test_corrupt_line_is_skipped_with_warning(self, tmp_path, capsys):
        path = str(tmp_path / "ledger.jsonl")
        append_record(path, _record())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{not json\n")
            fh.write('{"schema": "other/v1"}\n')
        append_record(path, _record(params={"cycles": 1}))
        records = read_ledger(path)
        assert len(records) == 2
        err = capsys.readouterr().err
        assert "skipping unparsable ledger line" in err
        assert "not a repro-obs-ledger/v1 record" in err

    def test_append_repairs_missing_trailing_newline(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        append_record(path, _record())
        with open(path, "rb+") as fh:
            fh.seek(-1, 2)
            fh.truncate()
        append_record(path, _record(params={"cycles": 1}))
        assert len(read_ledger(path)) == 2

    def test_append_is_constant_in_ledger_size(self, tmp_path):
        # Regression: the old implementation re-read the whole file per
        # append; a record landing must not depend on what is already
        # there — a deliberately corrupt (non-JSON) prefix still takes
        # appends, and the prefix bytes are untouched afterwards.
        path = str(tmp_path / "ledger.jsonl")
        prefix = b"\x00garbage that json would reject\n"
        with open(path, "wb") as fh:
            fh.write(prefix)
        append_record(path, _record())
        with open(path, "rb") as fh:
            assert fh.read(len(prefix)) == prefix
        assert len(read_ledger(path)) == 1

    def test_default_path_env_override(self, monkeypatch, tmp_path):
        target = str(tmp_path / "env-ledger.jsonl")
        monkeypatch.setenv("REPRO_LID_LEDGER", target)
        assert default_ledger_path() == target
        monkeypatch.delenv("REPRO_LID_LEDGER")
        assert default_ledger_path().endswith("ledger.jsonl")


def _append_worker(path, worker, count, barrier):
    """Append *count* distinct records, starting in lockstep."""
    barrier.wait()
    for i in range(count):
        record = _record(params={"cycles": 64, "seed": 0,
                                 "worker": worker, "i": i})
        append_record(path, record)


class TestConcurrentAppend:
    def test_parallel_appenders_lose_no_records(self, tmp_path):
        # Regression: append_record used to read the whole ledger and
        # atomic-replace it with old+line, so two concurrent appenders
        # could both read the same base and one overwrote the other's
        # record.  With O_APPEND single-write appends every record must
        # survive, whatever the interleaving.
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            pytest.skip("fork start method unavailable")
        path = str(tmp_path / "ledger.jsonl")
        workers, per_worker = 4, 25
        barrier = ctx.Barrier(workers)
        procs = [
            ctx.Process(target=_append_worker,
                        args=(path, w, per_worker, barrier))
            for w in range(workers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        records = read_ledger(path)
        assert len(records) == workers * per_worker
        seen = {(r["payload"]["params"]["worker"],
                 r["payload"]["params"]["i"]) for r in records}
        assert seen == {(w, i) for w in range(workers)
                        for i in range(per_worker)}


class TestResolve:
    def _ledger(self):
        return [_record(),
                _record(params={"cycles": 128, "seed": 0}),
                _record()]

    def test_by_index(self):
        records = self._ledger()
        assert resolve_record(records, "@0")[1] is records[0]
        assert resolve_record(records, "@-1")[1] is records[2]
        index, _ = resolve_record(records, "@-1")
        assert index == 2

    def test_by_prefix_resolves_duplicates_to_latest(self):
        records = self._ledger()
        prefix = records[0]["run_id"][:8]
        index, record = resolve_record(records, prefix)
        # records[0] and records[2] share the id; latest wins.
        assert index == 2
        assert record["run_id"] == records[0]["run_id"]

    def test_errors(self):
        records = self._ledger()
        with pytest.raises(ValueError, match="out of range"):
            resolve_record(records, "@9")
        with pytest.raises(ValueError, match="bad ledger index"):
            resolve_record(records, "@x")
        with pytest.raises(ValueError, match="no ledger record"):
            resolve_record(records, "zzzz")
        with pytest.raises(ValueError, match="empty"):
            resolve_record([], "@0")
        # A prefix matching two *distinct* ids is ambiguous.
        with pytest.raises(ValueError, match="ambiguous"):
            resolve_record(records, "")


class TestResolveBySpan:
    """``span:PREFIX[@OCC]`` refs: diff a served run against its
    offline CLI twin without copying run ids by hand."""

    def _ledger(self):
        # Three runs of one span interleaved with one other span.
        return [_record(),                                   # span A, occ 0
                _record(params={"cycles": 128, "seed": 0}),  # span B
                _record(meta={"jobs": 4}),                   # span A, occ 1
                _record(meta={"jobs": 8})]                   # span A, occ 2

    def test_newest_occurrence_is_the_default(self):
        records = self._ledger()
        span = records[0]["payload"]["span"]
        index, record = resolve_record(records, f"span:{span}")
        assert index == 3
        assert record is records[3]

    def test_latest_suffix_spells_the_default(self):
        records = self._ledger()
        span = records[0]["payload"]["span"]
        assert resolve_record(records, f"span:{span}:latest")[0] == 3
        assert resolve_record(records, f"@span:{span}")[0] == 3

    def test_occurrence_indexing(self):
        records = self._ledger()
        span = records[0]["payload"]["span"]
        assert resolve_record(records, f"span:{span}@0")[0] == 0
        assert resolve_record(records, f"span:{span}@-2")[0] == 2
        assert resolve_record(records, f"span:{span}@1")[0] == 2

    def test_span_prefix_matches(self):
        records = self._ledger()
        span = records[0]["payload"]["span"]
        assert resolve_record(records, f"span:{span[:6]}")[0] == 3

    def test_errors(self):
        records = self._ledger()
        span_a = records[0]["payload"]["span"]
        with pytest.raises(ValueError, match="no ledger record's span"):
            resolve_record(records, "span:zzzz")
        with pytest.raises(ValueError, match="out of range"):
            resolve_record(records, f"span:{span_a}@7")
        with pytest.raises(ValueError, match="bad span occurrence"):
            resolve_record(records, f"span:{span_a}@x")
        with pytest.raises(ValueError, match="empty span prefix"):
            resolve_record(records, "span:")

    def test_prefix_spanning_two_spans_is_ambiguous(self):
        fake = [{"run_id": "r1", "payload": {"span": "aaa1"}},
                {"run_id": "r2", "payload": {"span": "aaa2"}}]
        with pytest.raises(ValueError, match="ambiguous"):
            resolve_record(fake, "span:aaa")

    def test_ls_shows_the_span_column(self):
        records = self._ledger()
        table = format_ls(records)
        header = next(line for line in table.splitlines()
                      if "run id" in line)
        assert "span" in header
        assert records[0]["payload"]["span"] in table


class TestDiff:
    def test_identical(self):
        diff = diff_records(_record(), _record())
        assert diff["identical"]
        assert diff["attribution"] == []
        assert diff["verdict"] == {}
        text = format_diff(diff)
        assert "no deltas" in text

    def test_attribution_and_verdict_delta(self):
        a = _record()
        b = _record(params={"cycles": 128, "seed": 0},
                    verdict={"masked": 5, "deadlock": 3})
        diff = diff_records(a, b)
        assert not diff["identical"]
        assert diff["attribution"] == ["params"]
        assert diff["verdict"]["masked"] == (7, 5)
        assert diff["verdict"]["deadlock"] == (1, 3)
        text = format_diff(diff)
        assert "params" in text
        assert "masked" in text

    def test_timing_delta(self):
        a = _record(meta={"wall_seconds": 0.5, "jobs": 1})
        b = _record(meta={"wall_seconds": 1.0, "jobs": 4,
                          "cache": {"hits": 3, "misses": 0}})
        timing = diff_records(a, b)["timing"]
        assert timing["wall_seconds"] == (0.5, 1.0)
        assert timing["wall_ratio"] == pytest.approx(2.0)
        assert timing["cache"] == (None, {"hits": 3, "misses": 0})

    def test_metrics_digest_divergence_is_reported(self):
        a = _record(metrics={"m": {"type": "counter", "value": 1}})
        b = _record(metrics={"m": {"type": "counter", "value": 2}})
        diff = diff_records(a, b)
        assert not diff["identical"]
        assert "metrics_digest" in diff["verdict"]


class TestFormatLs:
    def test_table_lists_every_record(self):
        records = [_record(), _record(params={"cycles": 128, "seed": 0})]
        text = format_ls(records)
        assert "2 record(s)" in text
        assert "@0" in text and "@1" in text
        assert records[0]["run_id"] in text
        assert "inject-campaign" in text

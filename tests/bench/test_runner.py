"""Tests for the experiment runners (every table regenerates cleanly)."""

import pytest

from repro.bench.runner import (
    EXPERIMENTS,
    run_composition,
    run_cure,
    run_deadlock_study,
    run_equalization,
    run_figure1,
    run_figure2,
    run_loop_formula,
    run_reconvergent,
    run_transients,
    run_tree,
    run_variant_speedup,
)


class TestFigureRunners:
    def test_figure1_table_shape(self):
        table, rows = run_figure1(cycles=20)
        assert "4/5" in table
        assert len(rows) == 20
        # The steady regime shows one void output every 5 cycles.
        symbols = [row[-1] for row in rows[10:20]]
        assert symbols.count("N") == 2

    def test_figure2_all_match(self):
        table, rows = run_figure2()
        assert all(row[4] for row in rows)  # match column

    def test_figure1_fire_columns_are_bits(self):
        _table, rows = run_figure1(cycles=10)
        for row in rows:
            assert set(row[1:4]) <= {0, 1}


class TestFormulaRunners:
    def test_tree_within_bounds(self):
        _table, rows = run_tree()
        assert all(row[-1] for row in rows)

    def test_reconvergent_agreement(self):
        _table, rows = run_reconvergent()
        assert all(row[-1] for row in rows)

    def test_equalization_reaches_one(self):
        _table, rows = run_equalization()
        assert all(row[-1] for row in rows)

    def test_loop_formula_matches(self):
        _table, rows = run_loop_formula()
        assert all(row[-1] for row in rows)

    def test_composition_slowest_wins(self):
        _table, rows = run_composition()
        assert all(row[-1] for row in rows)


class TestStudyRunners:
    def test_stop_locality_improves(self):
        from repro.bench.runner import run_stop_locality

        _table, rows = run_stop_locality(cycles=150)
        for _label, old_total, old_void, new_total, new_void in rows:
            assert new_total <= old_total
            assert new_void <= old_void

    def test_variant_speedup_never_negative(self):
        _table, rows = run_variant_speedup(cycles=100)
        for _label, old, new, _speedup in rows:
            assert new >= old

    def test_deadlock_study_matches_claims(self):
        _table, rows = run_deadlock_study()
        for system, family, variant, expectation, status in rows:
            if variant == "casu":
                # Refined protocol: every suite entry stays live.
                assert status == "live", (system, variant)
            elif "half RS" in family:
                # Half relay stations need the refined discard rule;
                # under the original stop discipline they wedge (in
                # loops and even in feed-forward chains).
                assert status == "deadlock", (system, variant)
            else:
                assert status == "live", (system, variant)

    def test_transients_within_bound(self):
        _table, rows = run_transients()
        assert all(row[-1] for row in rows)

    def test_cure_always_restores_liveness(self):
        _table, rows = run_cure()
        assert rows
        for _system, before, promoted, after in rows:
            assert before == "deadlock"
            assert promoted >= 1
            assert after == "live"


class TestRegistry:
    def test_all_experiment_ids_present(self):
        expected = {
            "EXP-F1", "EXP-F2", "EXP-T1", "EXP-T2", "EXP-T3", "EXP-T4",
            "EXP-T5", "EXP-T6", "EXP-T7", "EXP-V1", "EXP-D1",
            "EXP-D1b", "EXP-D2", "EXP-D3", "EXP-C1", "EXP-A1",
            "EXP-A2",
        }
        assert set(EXPERIMENTS) == expected

    def test_registry_entries_are_callable(self):
        for _id, (description, runner) in EXPERIMENTS.items():
            assert callable(runner)
            assert description


class TestRecordIO:
    """Atomic BENCH record writes and tolerant reads."""

    def _record(self, exp_id="EXP-F1"):
        from repro.bench.runner import experiment_record

        return experiment_record(
            exp_id, wall_seconds=0.5, params={"cycles": 10},
            counters={"rows": 2})

    def test_write_then_read_roundtrip(self, tmp_path):
        from repro.bench.runner import read_records, write_record

        path = write_record(str(tmp_path), self._record())
        assert path.endswith("BENCH_EXP-F1.json")
        records = read_records(str(tmp_path))
        assert len(records) == 1
        assert records[0]["bench"] == "EXP-F1"
        assert records[0]["params"] == {"cycles": 10}

    def test_write_leaves_no_temp_files(self, tmp_path):
        import os

        from repro.bench.runner import write_record

        write_record(str(tmp_path), self._record())
        write_record(str(tmp_path), self._record())  # overwrite in place
        leftovers = [name for name in os.listdir(str(tmp_path))
                     if name.endswith(".tmp")]
        assert leftovers == []
        assert os.listdir(str(tmp_path)) == ["BENCH_EXP-F1.json"]

    def test_read_skips_truncated_record(self, tmp_path, capsys):
        from repro.bench.runner import read_records, write_record

        write_record(str(tmp_path), self._record("EXP-F1"))
        # A partial write from a crashed run predating atomic writes.
        (tmp_path / "BENCH_EXP-T1.json").write_text('{"schema": "repro-b')
        records = read_records(str(tmp_path))
        assert [r["bench"] for r in records] == ["EXP-F1"]
        assert "skipping unreadable" in capsys.readouterr().err

    def test_read_skips_wrong_schema(self, tmp_path, capsys):
        import json

        from repro.bench.runner import read_records, write_record

        write_record(str(tmp_path), self._record("EXP-F1"))
        (tmp_path / "BENCH_other.json").write_text(
            json.dumps({"schema": "something-else/v9"}))
        (tmp_path / "BENCH_list.json").write_text(json.dumps([1, 2]))
        records = read_records(str(tmp_path))
        assert [r["bench"] for r in records] == ["EXP-F1"]
        err = capsys.readouterr().err
        assert err.count("not a repro-bench-record/v1 record") == 2

    def test_read_records_sorted_by_filename(self, tmp_path):
        from repro.bench.runner import read_records, write_record

        for exp_id in ("EXP-T1", "EXP-A1", "EXP-F1"):
            write_record(str(tmp_path), self._record(exp_id))
        records = read_records(str(tmp_path))
        assert [r["bench"] for r in records] == [
            "EXP-A1", "EXP-F1", "EXP-T1"]

    def test_failed_write_cleans_up_temp(self, tmp_path, monkeypatch):
        import os

        from repro.bench.runner import _atomic_write_text

        target = tmp_path / "BENCH_EXP-F1.json"
        target.write_text("previous complete file\n")

        def boom(src, dst):
            raise OSError("simulated crash at the replace step")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            _atomic_write_text(str(target), "half-writ")
        monkeypatch.undo()
        # The previous complete file survives and no temp file leaks.
        assert target.read_text() == "previous complete file\n"
        assert os.listdir(str(tmp_path)) == ["BENCH_EXP-F1.json"]

"""Primary inputs and outputs of a latency-insensitive system.

:class:`Source` feeds a channel from a token stream, honouring back
pressure exactly like a shell output register (hold on stop-over-valid).
:class:`Sink` consumes a channel, recording every valid token it
accepts, and can replay a scripted back-pressure pattern — the knob the
deadlock and throughput experiments use to exercise the protocol from
the outside.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from ..errors import StructuralError
from ..kernel.component import Component
from .channel import Channel
from .token import Token, VOID
from .variant import DEFAULT_VARIANT, ProtocolVariant


def counting_stream() -> Iterator[Token]:
    """0, 1, 2, ... as valid tokens — the stream used in the paper's
    figures (their traces show consecutive integers flowing)."""
    return (Token(i) for i in itertools.count())


def scripted_stream(pattern: Iterable[Any]) -> Iterator[Token]:
    """Turn a finite pattern into tokens; ``None`` entries become voids.

    After the pattern is exhausted the stream continues with voids,
    modelling a primary input that has no more data to offer.
    """
    def gen():
        for item in pattern:
            if isinstance(item, Token):
                yield item
            else:
                yield VOID if item is None else Token(item)
        while True:
            yield VOID
    return gen()


class Source(Component):
    """Primary input: presents tokens from *stream* on one channel.

    The source behaves like a shell output register: a valid token that
    is stopped is held; a consumed (or void) token is replaced by the
    next stream element on the clock edge.  Its first token is presented
    already at cycle 0, mirroring the paper's convention that shell
    outputs reset to valid data.
    """

    def __init__(
        self,
        name: str,
        stream=None,
        variant: ProtocolVariant = DEFAULT_VARIANT,
    ):
        super().__init__(name)
        self._make_stream: Callable[[], Iterator[Token]]
        if stream is None:
            self._make_stream = counting_stream
        elif callable(stream):
            # A replayable factory: each reset gets a fresh iterator.
            self._make_stream = stream
        elif isinstance(stream, (list, tuple)):
            # A finite payload pattern; ``None`` entries become voids and
            # the stream continues with voids once exhausted.
            pattern = list(stream)
            self._make_stream = lambda: scripted_stream(pattern)
        else:
            # A bare iterator cannot be replayed across resets; it works
            # for a single run only (reference runs need a factory).
            self._make_stream = lambda: stream
        self._stream = self._make_stream()
        self.output: Optional[Channel] = None
        self._current: Token = VOID
        self.emitted: List[Tuple[int, Any]] = []

    def connect(self, channel: Channel) -> None:
        if self.output is not None:
            raise StructuralError(f"{self.name}: already connected")
        channel.bind_producer(self.name)
        self.output = channel

    def check_wiring(self) -> None:
        if self.output is None:
            raise StructuralError(f"{self.name}: source not connected")

    def reset(self) -> None:
        self._stream = self._make_stream()
        self._current = next(self._stream, VOID)
        self.emitted = []

    def publish(self) -> None:
        self.output.drive(self._current)

    def tick(self) -> None:
        stop = self.output.stop_asserted()
        if self._current.valid and stop:
            return  # held under back pressure
        if self._current.valid:
            self.emitted.append((self.cycle, self._current.value))
        self._current = next(self._stream, VOID)


class Sink(Component):
    """Primary output: consumes tokens and optionally pushes back.

    Parameters
    ----------
    stop_script:
        ``None`` for an always-ready sink, or a callable
        ``cycle -> bool`` giving the stop value the sink asserts during
        that cycle (a Moore script: it may not depend on settle-phase
        values).
    """

    def __init__(
        self,
        name: str,
        stop_script: Optional[Callable[[int], bool]] = None,
        variant: ProtocolVariant = DEFAULT_VARIANT,
    ):
        super().__init__(name)
        self.variant = variant
        self.stop_script = stop_script
        self.input: Optional[Channel] = None
        self.received: List[Tuple[int, Any]] = []
        self.void_cycles: List[int] = []

    def connect(self, channel: Channel) -> None:
        if self.input is not None:
            raise StructuralError(f"{self.name}: already connected")
        channel.bind_consumer(self.name)
        self.input = channel

    def check_wiring(self) -> None:
        if self.input is None:
            raise StructuralError(f"{self.name}: sink not connected")

    def reset(self) -> None:
        self.received = []
        self.void_cycles = []

    def publish(self) -> None:
        if self.stop_script is not None and self.stop_script(self.cycle):
            self.input.set_stop(True)

    def tick(self) -> None:
        stopping = self.stop_script is not None and self.stop_script(self.cycle)
        token = self.input.read()
        if token.valid and not stopping:
            self.received.append((self.cycle, token.value))
            telemetry = self._sim.telemetry if self._sim else None
            if telemetry is not None and telemetry.events is not None:
                telemetry.events.emit("token", "accept", self.cycle,
                                      sink=self.name)
        elif not token.valid:
            self.void_cycles.append(self.cycle)

    # -- metrics -----------------------------------------------------------

    @property
    def payloads(self) -> List[Any]:
        """Valid payloads accepted so far, in arrival order."""
        return [value for _cycle, value in self.received]

    def throughput(self, cycles: int) -> float:
        """Valid tokens accepted per cycle over the first *cycles* cycles."""
        if cycles <= 0:
            return 0.0
        return sum(1 for c, _ in self.received if c < cycles) / cycles

    def steady_throughput(self, warmup: int, cycles: int) -> float:
        """Throughput measured after discarding *warmup* cycles."""
        if cycles <= warmup:
            return 0.0
        accepted = sum(1 for c, _ in self.received if warmup <= c < cycles)
        return accepted / (cycles - warmup)

#!/usr/bin/env python3
"""Design-space exploration with the analysis and batch-simulation tools.

A floorplan gives you wire lengths; wire lengths demand relay stations;
relay stations cost throughput on some edges and nothing on others.
This example shows the workflow the toolkit supports on top of the
paper's theory:

1. map the *free slack* of every edge (where pipelining is free);
2. sweep one edge's relay count and watch the throughput Pareto curve;
3. meet a set of wire-length requirements and rebalance;
4. stress the final design against a whole batch of back-pressure
   scenarios at once with the vectorized skeleton simulator.

Run:  python examples/design_space_exploration.py
"""

from fractions import Fraction

from repro.analysis import (
    free_slack,
    insertion_plan,
    pareto_relay_throughput,
)
from repro.bench.tables import format_table
from repro.graph import figure1
from repro.skeleton import BatchSkeletonSim, system_throughput


def main() -> None:
    graph = figure1()
    print(f"baseline: the paper's Figure-1 system, "
          f"T = {system_throughput(graph)}\n")

    # 1. Which edges can absorb pipelining for free?
    slack = free_slack(graph, limit=16)
    rows = [(f"{src} -> {dst}", extra if extra < 16 else ">=16")
            for (src, dst), extra in slack.items()]
    print(format_table(("edge", "free relay stations"), rows,
                       title="Free slack at T = 4/5"))
    print("\nreading: the long branch (A->B0->C) is the critical cycle —")
    print("zero slack; the short branch tolerates stations up to the")
    print("balance point; source/sink edges never bind.\n")

    # 2. The Pareto curve of the short branch.
    short_index = next(i for i, e in enumerate(graph.edges)
                       if (e.src, e.dst) == ("A", "C"))
    curve = pareto_relay_throughput(graph, short_index, max_relays=5)
    print(format_table(
        ("relay stations on A->C", "system throughput"),
        [(count, str(rate)) for count, rate in curve],
        title="Pareto sweep of the short branch"))
    print("\nthe peak at 2 stations is path equalization rediscovered;")
    print("beyond it the imbalance flips sign and voids return.\n")

    # 3. Physical requirements: the A->B0 wire is long (3 cycles).
    planned, rate = insertion_plan(graph, {("A", "B0"): 3})
    print(f"after meeting A->B0 >= 3 relay stations and rebalancing: "
          f"T = {rate}, {planned.relay_count()} stations total\n")
    assert rate == Fraction(1)

    # 4. Batch-stress the planned design against 8 sink scripts.
    scenarios = [
        {"out": tuple((i >> b) & 1 == 1 for b in range(3))}
        for i in range(8)
    ]
    batch = BatchSkeletonSim(planned, scenarios)
    batch.run(900)
    rates = batch.sink_rates()["out"]
    rows = [
        ("".join("S" if bit else "." for bit in scenarios[i]["out"]),
         f"{float(rates[i]):.3f}")
        for i in range(len(scenarios))
    ]
    print(format_table(
        ("sink stop pattern (period 3)", "delivered rate"), rows,
        title="Batch back-pressure sweep of the planned design"))
    # Only the degenerate stop-forever script (instance 7) stalls.
    assert batch.stalled_instances() == [7]
    print("\ndelivery degrades exactly with the stop duty cycle, and "
          "only the stop-forever script stalls the system — every "
          "partial script keeps all shells firing.")


if __name__ == "__main__":
    main()

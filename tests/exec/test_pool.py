"""Contract tests for :mod:`repro.exec.pool`.

The load-bearing promise: ``map_deterministic(fn, units, jobs)`` is
``[fn(u) for u in units]`` for every ``jobs`` value — same elements,
same order — and worker failures surface as the repo's own typed
errors, never as raw pool internals.
"""

import os

import pytest

from repro.errors import (
    ExecutionError,
    InjectionError,
    ReproError,
    WorkerCrashError,
)
from repro.exec import (
    WorkUnit,
    chunk_units,
    map_deterministic,
    resolve_callable,
    run_unit,
)


def _square(x):
    return x * x


def _affine(pair):
    a, b = pair
    return 3 * a + b


def _raise_typed(x):
    raise InjectionError(f"unit {x} refused")


def _die(_x):
    os._exit(13)


class TestChunkUnits:
    def test_chunks_are_contiguous_and_cover(self):
        units = list(range(23))
        for jobs in (1, 2, 3, 7):
            chunks = chunk_units(units, jobs)
            flat = [u for chunk in chunks for u in chunk]
            assert flat == units

    def test_explicit_chunk_size(self):
        chunks = chunk_units(list(range(10)), jobs=2, chunk_size=4)
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ExecutionError):
            chunk_units([1, 2, 3], jobs=2, chunk_size=0)

    def test_split_is_timing_independent(self):
        first = chunk_units(list(range(100)), jobs=5)
        second = chunk_units(list(range(100)), jobs=5)
        assert first == second


class TestMapDeterministic:
    def test_matches_comprehension_for_every_jobs_value(self):
        units = list(range(17))
        expected = [_square(u) for u in units]
        for jobs in (1, 2, 3, 8):
            assert map_deterministic(_square, units, jobs=jobs) == expected

    def test_order_preserved_with_tiny_chunks(self):
        units = [(i, i % 3) for i in range(12)]
        expected = [_affine(u) for u in units]
        got = map_deterministic(_affine, units, jobs=3, chunk_size=1)
        assert got == expected

    def test_empty_and_singleton_run_serially(self):
        assert map_deterministic(_square, [], jobs=4) == []
        assert map_deterministic(_square, [5], jobs=4) == [25]

    def test_typed_error_crosses_process_boundary(self):
        with pytest.raises(InjectionError, match="refused"):
            map_deterministic(_raise_typed, list(range(6)), jobs=2)

    def test_typed_error_raised_serially_too(self):
        with pytest.raises(InjectionError):
            map_deterministic(_raise_typed, [1], jobs=1)

    def test_worker_death_is_a_worker_crash_error(self):
        with pytest.raises(WorkerCrashError):
            map_deterministic(_die, list(range(8)), jobs=2)

    def test_worker_crash_error_is_a_repro_error(self):
        assert issubclass(WorkerCrashError, ExecutionError)
        assert issubclass(ExecutionError, ReproError)


class TestWorkUnit:
    def test_named_callable_roundtrip(self):
        unit = WorkUnit(fn="tests.exec.test_pool:_square", args=(7,))
        assert run_unit(unit) == 49
        assert unit() == 49

    def test_kwargs_apply(self):
        unit = WorkUnit(fn="builtins:int", args=("2a",),
                        kwargs=(("base", 16),))
        assert run_unit(unit) == 0x2A

    def test_units_map_across_processes(self):
        units = [WorkUnit(fn="tests.exec.test_pool:_square", args=(i,))
                 for i in range(9)]
        got = map_deterministic(run_unit, units, jobs=3)
        assert got == [i * i for i in range(9)]

    def test_bad_reference_shapes(self):
        with pytest.raises(ExecutionError):
            resolve_callable("no-colon-here")
        with pytest.raises(ExecutionError):
            resolve_callable("not_a_module_xyz:fn")
        with pytest.raises(ExecutionError):
            resolve_callable("os:no_such_attr")
        with pytest.raises(ExecutionError):
            resolve_callable("os:sep")  # not callable

"""Dedicated tests for block-level progress checking."""

import pytest

from repro.lid.variant import ProtocolVariant
from repro.verify.liveness import ProgressResult, check_progress


class TestProgress:
    @pytest.mark.parametrize("kind", ["full", "half", "half-registered"])
    @pytest.mark.parametrize("variant", list(ProtocolVariant))
    def test_all_flavours_progress(self, kind, variant):
        result = check_progress(kind, variant)
        assert result.holds, result.stuck_state

    def test_result_metadata(self):
        result = check_progress("full", bound=6)
        assert isinstance(result, ProgressResult)
        assert result.bound == 6
        assert result.states_explored > 0
        assert "full relay station" in result.block

    def test_tight_bound_still_passes(self):
        # A full station drains within 3 cooperative cycles from any
        # reachable state (2 buffered tokens + 1 margin).
        result = check_progress("full", bound=3)
        assert result.holds

    def test_half_registered_needs_more_cycles(self):
        # The conservative registered stop inserts bubbles, so a
        # depth-1 bound is not enough to witness an emission from the
        # just-drained state.
        generous = check_progress("half-registered", bound=4)
        assert generous.holds

    def test_mutated_block_gets_stuck(self, monkeypatch):
        from repro.verify import fsm

        def frozen(state, in_tok, stop_in, variant=None):
            return state  # never moves: a clock-gating bug

        monkeypatch.setattr(fsm, "full_rs_step", frozen)
        result = check_progress("full")
        assert not result.holds
        assert result.stuck_state is not None

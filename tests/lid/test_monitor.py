"""Tests for runtime protocol monitors."""

import pytest

from repro import LidSystem, pearls
from repro.errors import ProtocolViolationError
from repro.kernel.component import Component
from repro.lid import ChannelMonitor, StreamMonitor, watch_system
from repro.lid.channel import Channel
from repro.lid.token import Token, VOID

from ..conftest import build_pipeline


class TestCleanSystems:
    def test_pipeline_passes_under_watch(self):
        system, sink = build_pipeline(stages=2, relays=2)
        monitors = watch_system(system)
        system.run(40)
        assert all(m.cycles_observed == 40 for m in monitors)

    def test_backpressure_passes_under_watch(self):
        system, sink = build_pipeline(
            stages=2, relays=1, stop_script=lambda c: c % 2 == 0)
        watch_system(system)
        system.run(40)  # no exception

    def test_strict_stop_shape_on_refined_protocol(self):
        system, sink = build_pipeline(
            stages=2, relays=1, stop_script=lambda c: c % 3 == 0)
        watch_system(system, strict_stop_shape=False)
        system.run(30)

    def test_token_counting(self):
        system, sink = build_pipeline(stages=1, relays=1)
        monitors = watch_system(system)
        system.run(20)
        # Sink-adjacent channel carries one token per cycle (almost).
        assert max(m.tokens_seen for m in monitors) >= 18


class _HoldBreaker(Component):
    """Drives a channel, deliberately changing a stopped token."""

    def __init__(self, name, chan):
        super().__init__(name)
        self.chan = chan
        self.counter = 0

    def reset(self):
        self.counter = 0

    def publish(self):
        self.chan.drive(Token(self.counter))

    def tick(self):
        self.counter += 1  # advances even while stopped: violation


class _Stopper(Component):
    def __init__(self, name, chan, stop_at):
        super().__init__(name)
        self.chan = chan
        self.stop_at = stop_at

    def publish(self):
        if self.cycle in self.stop_at:
            self.chan.set_stop(True)

    def tick(self):
        pass


class TestViolationDetection:
    def _broken_harness(self):
        from repro.kernel.scheduler import Simulator

        sim = Simulator()
        chan = Channel.create(sim, "c")
        sim.add_component(_HoldBreaker("bad", chan))
        sim.add_component(_Stopper("stop", chan, stop_at={3}))
        ChannelMonitor(chan).attach(sim)
        return sim

    def test_hold_violation_raises(self):
        sim = self._broken_harness()
        with pytest.raises(ProtocolViolationError, match="hold violated"):
            sim.step(10)

    def test_violation_names_channel_and_cycle(self):
        sim = self._broken_harness()
        with pytest.raises(ProtocolViolationError, match="'c'"):
            sim.step(10)


class TestStreamMonitor:
    def test_records_consumed_payloads(self):
        system, sink = build_pipeline(stages=1, relays=1)
        chan = system.channels[-1]
        monitor = StreamMonitor(chan).attach(system.sim)
        system.run(10)
        assert monitor.consumed == sink.payloads

    def test_forbid_repeats_on_counting_stream(self):
        system, sink = build_pipeline(
            stages=1, relays=1,
            pearl_factory=lambda: pearls.Identity(initial=-1))
        chan = system.channels[-1]
        StreamMonitor(chan, forbid_repeats=True).attach(system.sim)
        system.run(20)  # strictly increasing payloads: fine

    def test_repeat_detection(self):
        from repro.kernel.scheduler import Simulator

        sim = Simulator()
        chan = Channel.create(sim, "c")

        class Repeater(Component):
            def publish(self):
                chan.drive(Token(7))

        sim.add_component(Repeater("rep"))
        StreamMonitor(chan, forbid_repeats=True).attach(sim)
        with pytest.raises(ProtocolViolationError, match="twice"):
            sim.step(3)

"""Command-line interface: ``repro-lid``.

Subcommands:

* ``analyze``   — static + dynamic analysis of a named topology;
* ``verify``    — run the safety-property campaign;
* ``reproduce`` — regenerate every paper artifact (tables to stdout);
* ``figure1`` / ``figure2`` — print the evolution traces of the paper's
  two figures;
* ``deadlock``  — skeleton liveness check of a named topology;
* ``inject``    — fault-injection campaign with verdict classification
  (masked / detected / silent-corruption / deadlock / timeout);
* ``trace``     — run with event tracing on; export JSONL or a Chrome
  trace viewable in Perfetto / ``chrome://tracing``;
* ``profile``   — run with the phase profiler on; print wall time per
  scheduler phase, cycles/sec and events/sec;
* ``obs``       — cross-run observability: ``ls``/``show``/``diff``
  over the persistent run ledger, ``regress`` over bench records and
  ledger trajectories;
* ``export``    — emit a topology as DOT or JSON, or a protocol block
  as VHDL.

``inject``, ``deadlock``, ``reproduce`` and ``series`` accept
``--ledger [FILE]`` to append a content-addressed run record (see
``docs/observability.md``); ``inject`` and ``reproduce`` accept
``--progress`` for a live stderr status line (stdout bytes are
untouched either way).

Topology arguments take the form ``name[:key=value,...]``, e.g.
``ring:shells=3,relays=2`` or ``reconvergent:long=2+1,short=1``.
``feedback`` is an alias for the paper's Figure 2 loop; ``dag:...`` and
``loopy:...`` build seeded random topologies using the global
``--seed`` (the one deterministic seed every randomized consumer —
topology generation, fault-list sampling — derives from; it is echoed
in report headers so runs can be reproduced from their output alone).
"""

from __future__ import annotations

import argparse
import sys

from .analysis import analyze
from .bench.runner import EXPERIMENTS, run_all, run_figure1, run_figure2
from .graph.specs import parse_topology
from .lid.variant import ProtocolVariant
from .skeleton import check_deadlock

#: Backward-compatible alias — the spec parser moved to
#: :mod:`repro.graph.specs` so non-CLI consumers (GraphRef
#: materialization, scripts) don't import argparse machinery.
_parse_topology = parse_topology


def _variant(text: str) -> ProtocolVariant:
    return ProtocolVariant(text)


def _positive_int(text: str) -> int:
    """Argparse type for counts that must be >= 1 (e.g. ``--jobs``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, "
                                         f"got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _fault_spec(text: str) -> str:
    """Argparse type for ``--faults``: validate every class/kind name
    up front so a typo exits 2 with one line instead of surfacing as an
    InjectionError mid-campaign."""
    classes = tuple(item.strip() for item in text.split(",")
                    if item.strip())
    if not classes:
        raise argparse.ArgumentTypeError(
            "expected a comma-separated list of fault classes")
    from .errors import InjectionError
    from .inject.faults import resolve_classes

    try:
        resolve_classes(classes)
    except InjectionError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return text


def _window_spec(text: str) -> str:
    """Argparse type for ``--window LO:HI``: malformed bounds exit 2
    with one line instead of a ValueError traceback."""
    lo_text, sep, hi_text = text.partition(":")
    if not sep:
        raise argparse.ArgumentTypeError(f"expected LO:HI, got {text!r}")
    try:
        lo, hi = int(lo_text), int(hi_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"window bounds must be integers, got {text!r}")
    if lo < 0 or hi <= lo:
        raise argparse.ArgumentTypeError(
            f"need 0 <= LO < HI, got [{lo}, {hi})")
    return text


def _version_string() -> str:
    """``<version> (git <rev>)`` — the one version line, shared by
    ``repro-lid --version`` and ``python -m repro --version``."""
    from ._version import __version__
    from .bench.runner import git_rev

    rev = git_rev()
    suffix = f" (git {rev})" if rev != "unknown" else ""
    return f"{__version__}{suffix}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lid",
        description="Latency-insensitive protocol toolkit "
                    "(Casu & Macchiarulo, DATE 2004 reproduction)",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {_version_string()}",
        help="print version and git revision, then exit")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="global seed for every randomized consumer (dag:/loopy: "
             "topology generation, inject fault sampling); fixed "
             "default keeps all output reproducible")
    # Accept --seed after the subcommand too; SUPPRESS keeps a value
    # given before the subcommand from being clobbered by a default.
    seed_parent = argparse.ArgumentParser(add_help=False)
    seed_parent.add_argument("--seed", type=int,
                             default=argparse.SUPPRESS,
                             help=argparse.SUPPRESS)
    jobs_parent = argparse.ArgumentParser(add_help=False)
    jobs_parent.add_argument(
        "--jobs", "-j", type=_positive_int, default=1, metavar="N",
        help="worker processes for independent simulation units "
             "(default 1 = serial; output is byte-identical for any "
             "value, see docs/parallelism.md)")
    ledger_parent = argparse.ArgumentParser(add_help=False)
    ledger_parent.add_argument(
        "--ledger", nargs="?", const="", default=None, metavar="FILE",
        help="append a content-addressed run record to this JSONL "
             "ledger (bare --ledger uses $REPRO_LID_LEDGER or "
             "~/.cache/repro-lid/ledger.jsonl)")
    progress_parent = argparse.ArgumentParser(add_help=False)
    progress_parent.add_argument(
        "--progress", action="store_true",
        help="live progress line on stderr (done/total, cache hits, "
             "ETA); stdout bytes are unchanged")
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze",
                           parents=[seed_parent, jobs_parent],
                           help="analyze a topology")
    p_analyze.add_argument("topology")
    p_analyze.add_argument("--variant", type=_variant,
                           default=ProtocolVariant.CASU,
                           choices=list(ProtocolVariant))
    p_analyze.add_argument("--metrics-out", default=None, metavar="FILE",
                           help="also run an instrumented simulation and "
                                "write its metrics snapshot as JSON")
    p_analyze.add_argument("--cycles", type=int, default=200,
                           help="cycles for the --metrics-out run")
    p_analyze.add_argument("--max-cycles", type=int, default=50_000,
                           help="skeleton cycle budget for the dynamic "
                                "analyses; exceeding it exits 2 with a "
                                "diagnostic instead of a traceback")

    sub.add_parser("verify", parents=[seed_parent],
                   help="run the safety-property campaign")

    p_repro = sub.add_parser("reproduce",
                             parents=[seed_parent, jobs_parent,
                                      ledger_parent, progress_parent],
                             help="regenerate all paper artifacts")
    p_repro.add_argument("--experiment", choices=sorted(EXPERIMENTS),
                         help="run a single experiment id")
    p_repro.add_argument("--output", "-o", default=None,
                         help="write one table file per experiment "
                              "into this directory")
    p_repro.add_argument("--metrics-out", default=None, metavar="FILE",
                         help="write per-experiment wall time and row "
                              "counts as a JSON metrics snapshot")

    sub.add_parser("figure1", parents=[seed_parent],
                   help="print the Figure 1 evolution")
    sub.add_parser("figure2", parents=[seed_parent],
                   help="print the Figure 2 sweep")

    p_dead = sub.add_parser("deadlock",
                          parents=[seed_parent, jobs_parent,
                                   ledger_parent],
                          help="skeleton liveness check")
    p_dead.add_argument("topology")
    p_dead.add_argument("--variant", type=_variant,
                        default=ProtocolVariant.CASU,
                        choices=list(ProtocolVariant))
    p_dead.add_argument("--max-cycles", type=int, default=10_000,
                        help="cycle budget for reaching the periodic "
                             "regime; an inconclusive verdict exits 2")
    p_dead.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="instrument the liveness probes and write "
                             "their metrics snapshot as JSON (forces "
                             "serial probing)")
    p_dead.add_argument("--backend", choices=["scalar", "codegen"],
                        default="scalar",
                        help="probe engine (codegen: per-topology "
                             "compiled cycle functions, same verdict)")

    p_inject = sub.add_parser(
        "inject", parents=[seed_parent, jobs_parent, ledger_parent,
                           progress_parent],
        help="fault-injection campaign with verdict classification")
    p_inject.add_argument("--topology", default="feedback",
                          help="topology spec (default: feedback, the "
                               "paper's Figure 2 loop)")
    p_inject.add_argument("--variant", type=_variant,
                          default=ProtocolVariant.CASU,
                          choices=list(ProtocolVariant))
    p_inject.add_argument("--faults", default="stop,void",
                          type=_fault_spec,
                          help="comma-separated fault classes or kinds "
                               "(see repro.inject.FAULT_CLASSES)")
    p_inject.add_argument("--cycles", type=int, default=200,
                          help="run length of every experiment")
    p_inject.add_argument("--samples", type=int, default=64,
                          help="seeded-random sample size from the "
                               "fault universe")
    p_inject.add_argument("--exhaustive", action="store_true",
                          help="run every kind x target x cycle of the "
                               "window instead of sampling")
    p_inject.add_argument("--window", default=None, metavar="LO:HI",
                          type=_window_spec,
                          help="restrict injection cycles to [LO, HI)")
    p_inject.add_argument("--engine", choices=["lid", "skeleton"],
                          default="lid",
                          help="lid: token-level scalar engine with "
                               "monitors; skeleton: batched "
                               "valid/stop-only engine (boundary "
                               "control faults)")
    p_inject.add_argument("--backend",
                          choices=["auto", "scalar", "vectorized",
                                   "bitsim", "codegen"],
                          default="auto",
                          help="skeleton engine backend (bitsim: "
                               "bit-parallel planes, ~64 faults per "
                               "word-level run; codegen: per-topology "
                               "compiled cycle functions)")
    p_inject.add_argument("--strict", action="store_true",
                          help="arm the strict stop-shape monitor "
                               "(detects stops landing on voids under "
                               "the refined protocol)")
    p_inject.add_argument("--smoke", action="store_true",
                          help="small fast campaign for CI (64 cycles, "
                               "12 samples)")
    p_inject.add_argument("--format", choices=["table", "json"],
                          default="table")
    p_inject.add_argument("--output", "-o", default=None,
                          help="write the report here (default: stdout)")
    p_inject.add_argument("--metrics-out", default=None, metavar="FILE",
                          help="write campaign verdict metrics as a "
                               "JSON metrics snapshot")
    p_inject.add_argument("--trace-out", default=None, metavar="FILE",
                          help="write one merged Chrome trace: parent "
                               "events plus a (pid, tid) lane per "
                               "worker chunk under --jobs")
    p_inject.add_argument("--no-cache", action="store_true",
                          help="disable the on-disk golden-run cache")
    p_inject.add_argument("--cache-dir", default=None, metavar="DIR",
                          help="golden-run cache directory (default: "
                               "$REPRO_LID_CACHE_DIR or "
                               "~/.cache/repro-lid; keys include the "
                               "git revision, so stale entries are "
                               "never reused across commits)")

    p_live = sub.add_parser(
        "liveness", parents=[seed_parent],
        help="exhaustive liveness proof over all environments")
    p_live.add_argument("topology")
    p_live.add_argument("--variant", type=_variant,
                        default=ProtocolVariant.CASU,
                        choices=list(ProtocolVariant))
    p_live.add_argument("--max-states", type=int, default=100_000)

    p_trace = sub.add_parser(
        "trace", parents=[seed_parent], help="run with event tracing and export the stream")
    p_trace.add_argument("topology")
    p_trace.add_argument("--cycles", type=int, default=200)
    p_trace.add_argument("--variant", type=_variant,
                         default=ProtocolVariant.CASU,
                         choices=list(ProtocolVariant))
    p_trace.add_argument("--format", choices=["jsonl", "chrome"],
                         default="jsonl",
                         help="jsonl: one event per line; chrome: "
                              "Chrome Trace Event JSON (Perfetto)")
    p_trace.add_argument("--engine", choices=["lid", "skeleton"],
                         default="lid",
                         help="lid: full token-level simulation; "
                              "skeleton: valid/stop skeleton only")
    p_trace.add_argument("--output", "-o", default=None,
                         help="output file (default: stdout)")

    p_profile = sub.add_parser(
        "profile", parents=[seed_parent], help="run with the phase profiler and report timings")
    p_profile.add_argument("topology")
    p_profile.add_argument("--cycles", type=int, default=2000)
    p_profile.add_argument("--variant", type=_variant,
                           default=ProtocolVariant.CASU,
                           choices=list(ProtocolVariant))
    p_profile.add_argument("--json", action="store_true",
                           help="print the report as JSON instead of a "
                                "table")
    p_profile.add_argument("--trace-out", default=None, metavar="FILE",
                           help="also write a Chrome trace (events + "
                                "profiler phase slices)")
    p_profile.add_argument("--output", "-o", default=None,
                           help="write the report here (default: stdout)")

    p_stats = sub.add_parser(
        "stats", parents=[seed_parent], help="simulate a topology and print run statistics")
    p_stats.add_argument("topology")
    p_stats.add_argument("--cycles", type=int, default=200)
    p_stats.add_argument("--variant", type=_variant,
                         default=ProtocolVariant.CASU,
                         choices=list(ProtocolVariant))

    p_series = sub.add_parser(
        "series", parents=[seed_parent, ledger_parent],
        help="emit a figure-style data series as CSV")
    from .analysis.sweep import SERIES_GENERATORS

    p_series.add_argument("which", choices=sorted(SERIES_GENERATORS))
    p_series.add_argument("--output", "-o", default=None)

    p_serve = sub.add_parser(
        "serve",
        help="run the campaign service: an asyncio HTTP/JSON front end "
             "with a shared result cache, request coalescing and a "
             "persistent worker pool (see docs/serving.md)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8377,
                         help="listen port (0 = ephemeral; the bound "
                              "port is announced on stderr)")
    p_serve.add_argument("--jobs", "-j", type=_positive_int, default=1,
                         metavar="N",
                         help="persistent worker pool size for cold "
                              "manifests")
    p_serve.add_argument("--mode", choices=["process", "thread"],
                         default="process",
                         help="worker pool flavor (thread: in-process, "
                              "for tests and low-latency smoke runs)")
    p_serve.add_argument("--queue-depth", type=_positive_int, default=8,
                         metavar="N",
                         help="max outstanding uncoalesced runs before "
                              "503 backpressure (default 8)")
    p_serve.add_argument("--rate", type=float, default=0.0,
                         metavar="R",
                         help="per-client token-bucket refill rate in "
                              "requests/second (default 0 = unlimited)")
    p_serve.add_argument("--burst", type=float, default=None,
                         metavar="B",
                         help="token-bucket capacity (default: "
                              "max(2*RATE, 1))")
    p_serve.add_argument("--ledger", nargs="?", const="", default=None,
                         metavar="FILE",
                         help="append a run record for every executed "
                              "manifest (bare --ledger uses the "
                              "default ledger path)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable the shared response/golden-run "
                              "cache (every request executes)")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache directory (default: "
                              "$REPRO_LID_CACHE_DIR or "
                              "~/.cache/repro-lid)")

    p_client = sub.add_parser(
        "client",
        help="talk to a running campaign service: POST a manifest "
             "(optionally N concurrent copies), or query "
             "health/stats")
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=8377)
    p_client.add_argument("--manifest", default=None, metavar="FILE",
                          help="manifest JSON file ('-' = stdin)")
    p_client.add_argument("--concurrency", type=_positive_int, default=1,
                          metavar="N",
                          help="POST the same manifest N times "
                               "concurrently; all responses must be "
                               "byte-identical (coalescing check)")
    p_client.add_argument("--stream", action="store_true",
                          help="request NDJSON progress streaming; "
                               "progress lines go to stderr, the "
                               "report body to stdout/--output")
    p_client.add_argument("--health", action="store_true",
                          help="GET /healthz and exit")
    p_client.add_argument("--stats", action="store_true",
                          help="GET /v1/stats and exit")
    p_client.add_argument("--timeout", type=float, default=600.0,
                          help="socket timeout in seconds")
    p_client.add_argument("--output", "-o", default=None,
                          help="write the response body here "
                               "(default: stdout)")

    p_obs = sub.add_parser(
        "obs", help="cross-run observability: run ledger & regression "
                    "tracking")
    p_obs.add_argument("--ledger", default=None, metavar="FILE",
                       help="ledger file (default: $REPRO_LID_LEDGER "
                            "or ~/.cache/repro-lid/ledger.jsonl)")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    obs_sub.add_parser("ls", help="summary table of the run ledger")
    p_obs_show = obs_sub.add_parser(
        "show", help="print one ledger record (@index or run-id prefix)")
    p_obs_show.add_argument("ref")
    p_obs_show.add_argument("--canonical", action="store_true",
                            help="print only the canonical payload "
                                 "line (the byte-deterministic part; "
                                 "what CI cmp-compares)")
    p_obs_diff = obs_sub.add_parser(
        "diff", help="verdict/timing/attribution delta of two records")
    p_obs_diff.add_argument("a")
    p_obs_diff.add_argument("b")
    p_obs_regress = obs_sub.add_parser(
        "regress", help="flag wall-time / rate regressions across "
                        "bench records and ledger trajectory; exits 1 "
                        "on regression")
    p_obs_regress.add_argument("--bench", action="append", default=[],
                               metavar="DIR",
                               help="BENCH_*.json directory; pass "
                                    "repeatedly, oldest first (each "
                                    "directory is one trajectory "
                                    "position)")
    p_obs_regress.add_argument("--threshold", type=float, default=1.5,
                               help="tolerated slowdown ratio "
                                    "(default 1.5)")
    p_obs_regress.add_argument("--baseline",
                               choices=["first", "best"],
                               default="first",
                               help="compare the newest point against "
                                    "the first or the best prior point")
    p_obs_regress.add_argument("--no-ledger", action="store_true",
                               help="ignore the ledger; scan only "
                                    "--bench directories")

    p_export = sub.add_parser("export", parents=[seed_parent],
                            help="export artifacts")
    p_export.add_argument(
        "what",
        choices=["dot", "json", "relay-vhdl", "half-relay-vhdl",
                 "shell-vhdl"],
    )
    p_export.add_argument("--topology",
                          help="for dot/json: topology to export")
    p_export.add_argument("--width", type=int, default=8,
                          help="for vhdl: data width")
    p_export.add_argument("--output", "-o", default=None,
                          help="output file (default: stdout)")

    args = parser.parse_args(argv)

    if args.command == "analyze":
        from .errors import PeriodicityTimeout

        graph = _parse_topology(args.topology, seed=args.seed)
        if args.topology.startswith(("dag", "loopy")):
            print(f"seed: {args.seed}")
        from .exec import GraphRef

        try:
            report = analyze(graph, variant=args.variant,
                             max_cycles=args.max_cycles, jobs=args.jobs,
                             graph_ref=GraphRef.from_spec(
                                 args.topology, seed=args.seed))
        except PeriodicityTimeout as exc:
            print(f"inconclusive: {exc} — raise --max-cycles",
                  file=sys.stderr)
            return 2
        print(report.render())
        if args.metrics_out:
            _write_metrics_snapshot(graph, args)
    elif args.command == "verify":
        from .verify import results_table, verify_all

        print(results_table(verify_all()))
    elif args.command == "reproduce":
        _reproduce(args)
    elif args.command == "trace":
        return _trace(args)
    elif args.command == "profile":
        return _profile(args)
    elif args.command == "figure1":
        table, _rows = run_figure1()
        print(table)
    elif args.command == "figure2":
        table, _rows = run_figure2()
        print(table)
    elif args.command == "deadlock":
        return _deadlock(args)
    elif args.command == "inject":
        return _inject(args)
    elif args.command == "stats":
        import json as _json

        graph = _parse_topology(args.topology, seed=args.seed)
        system = graph.elaborate(variant=args.variant)
        system.run(args.cycles)
        stats = dict(system.stats(), seed=args.seed)
        print(_json.dumps(stats, indent=2, sort_keys=True))
    elif args.command == "liveness":
        from .verify import verify_system_liveness

        graph = _parse_topology(args.topology)
        result = verify_system_liveness(graph, variant=args.variant,
                                        max_states=args.max_states)
        if result.live:
            print(f"LIVE for all environments: "
                  f"{result.reachable_states} reachable states, "
                  f"{result.transitions} transitions explored, "
                  f"{result.ambiguous_states} with ambiguous stop "
                  f"fixpoints")
        else:
            print(f"STUCK STATE reachable after exploring "
                  f"{result.reachable_states} states: "
                  f"{result.stuck_state}")
        return 0 if result.live else 1
    elif args.command == "series":
        from time import perf_counter

        from .analysis.sweep import SERIES_GENERATORS

        started = perf_counter()
        series = SERIES_GENERATORS[args.which]()
        text = series.to_csv()
        wall = perf_counter() - started
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(text)
        else:
            print(text, end="")
        if args.ledger is not None:
            from .obs import make_record

            _ledger_note(args.ledger, make_record(
                "series",
                params={"which": args.which},
                verdict={"lines": len(text.splitlines())},
                meta={"wall_seconds": round(wall, 6)}))
    elif args.command == "serve":
        return _serve(args)
    elif args.command == "client":
        return _client(args)
    elif args.command == "obs":
        return _obs(args)
    elif args.command == "export":
        text = _export(args)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(text)
        else:
            print(text)
    return 0


def _ledger_note(ledger_arg: str, record) -> None:
    """Append *record* and confirm on stderr (stdout stays canonical).

    ``--ledger`` without a file argument parses to ``""`` — the
    sentinel for "use the default ledger path".
    """
    from .obs import append_record, default_ledger_path

    path = ledger_arg or default_ledger_path()
    run_id = append_record(path, record)
    print(f"ledger: appended {record['payload']['kind']} {run_id} "
          f"to {path}", file=sys.stderr)


def _deadlock(args) -> int:
    """``deadlock``: liveness check + optional metrics/ledger record."""
    from time import perf_counter

    from .exec import GraphRef

    graph = _parse_topology(args.topology, seed=args.seed)
    telemetry = None
    if args.metrics_out:
        from .obs import Telemetry

        telemetry = Telemetry.metrics_only()
    started = perf_counter()
    try:
        verdict = check_deadlock(graph, variant=args.variant,
                                 max_cycles=args.max_cycles,
                                 jobs=args.jobs,
                                 graph_ref=GraphRef.from_spec(
                                     args.topology, seed=args.seed),
                                 telemetry=telemetry,
                                 backend=args.backend)
    except ValueError as exc:
        # Capability refusal (e.g. codegen on a GALS graph): a
        # one-line diagnostic, not a traceback.
        raise SystemExit(f"repro-lid deadlock: {exc}")
    wall = perf_counter() - started
    print(verdict.detail)
    if args.metrics_out:
        import json

        from .bench.runner import git_rev

        payload = {
            "schema": "repro-metrics/v1",
            "topology": args.topology,
            "variant": str(args.variant),
            "max_cycles": args.max_cycles,
            "git_rev": git_rev(),
            "metrics": telemetry.metrics.snapshot(),
        }
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.metrics_out}")
    if args.ledger is not None:
        from .exec import graph_fingerprint
        from .obs import make_record

        _ledger_note(args.ledger, make_record(
            "deadlock-check",
            topology=args.topology,
            fingerprint=graph_fingerprint(graph),
            variant=str(args.variant),
            params={"max_cycles": args.max_cycles, "seed": args.seed},
            verdict={
                "deadlocked": verdict.deadlocked,
                "potential": verdict.potential,
                "inconclusive": verdict.inconclusive,
                "transient": verdict.transient,
                "period": verdict.period,
            },
            metrics=(telemetry.metrics.snapshot()
                     if telemetry is not None else None),
            meta={"wall_seconds": round(wall, 6), "jobs": args.jobs}))
    if verdict.inconclusive:
        return 2
    return 0 if verdict.live else 1


def _serve(args) -> int:
    """``serve``: run the campaign service in the foreground."""
    from .serve import CampaignScheduler, CampaignServer, run_server

    ledger = None
    if args.ledger is not None:
        from .obs import default_ledger_path

        ledger = args.ledger or default_ledger_path()
    scheduler = CampaignScheduler(
        jobs=args.jobs, mode=args.mode, queue_depth=args.queue_depth,
        use_cache=not args.no_cache, cache_dir=args.cache_dir,
        ledger=ledger)
    server = CampaignServer(scheduler, host=args.host, port=args.port,
                            rate=args.rate, burst=args.burst)

    def announce(srv) -> None:
        print(f"repro-lid serve: listening on "
              f"http://{srv.host}:{srv.port} "
              f"({args.mode} pool, jobs={args.jobs}, "
              f"queue-depth={args.queue_depth})", file=sys.stderr)

    return run_server(server, announce=announce)


def _client(args) -> int:
    """``client``: POST a manifest (or query health/stats)."""
    import http.client
    import json

    def request(method: str, path: str, body=None, headers=None):
        conn = http.client.HTTPConnection(args.host, args.port,
                                          timeout=args.timeout)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            return (response.status, dict(response.getheaders()),
                    response.read())
        finally:
            conn.close()

    def emit(body: bytes) -> None:
        if args.output:
            with open(args.output, "wb") as fh:
                fh.write(body)
            print(f"wrote {args.output} ({len(body)} bytes)",
                  file=sys.stderr)
        else:
            sys.stdout.buffer.write(body)
            sys.stdout.buffer.flush()

    if args.health or args.stats:
        path = "/healthz" if args.health else "/v1/stats"
        status, _headers, body = request("GET", path)
        emit(body)
        return 0 if status == 200 else 1

    if not args.manifest:
        raise SystemExit("repro-lid client: --manifest FILE required "
                         "(or use --health/--stats)")
    if args.manifest == "-":
        manifest_text = sys.stdin.read()
    else:
        with open(args.manifest, "r", encoding="utf-8") as fh:
            manifest_text = fh.read()
    try:
        payload = json.loads(manifest_text)
    except ValueError as exc:
        raise SystemExit(f"repro-lid client: bad manifest JSON: {exc}")

    if args.stream:
        return _client_stream(args, payload)

    body_bytes = json.dumps(payload).encode()
    headers = {"Content-Type": "application/json"}

    def post(_index: int):
        return request("POST", "/v1/run", body=body_bytes,
                       headers=headers)

    if args.concurrency == 1:
        results = [post(0)]
    else:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=args.concurrency) as pool:
            results = list(pool.map(post, range(args.concurrency)))

    status0, headers0, body0 = results[0]
    distinct = {(status, body) for status, _h, body in results}
    if len(distinct) != 1:
        raise SystemExit(
            f"repro-lid client: {len(distinct)} distinct responses "
            f"from {args.concurrency} identical requests — the "
            f"service broke its determinism contract")
    sources = [h.get("X-Repro-Cache", "?") for _s, h, _b in results]
    from collections import Counter

    tally = "  ".join(f"{name}={count}" for name, count
                      in sorted(Counter(sources).items()))
    print(f"client: {args.concurrency} request(s), status {status0}, "
          f"{tally}", file=sys.stderr)
    emit(body0)
    if status0 != 200:
        return 1
    return int(headers0.get("X-Repro-Exit", "0") or 0)


def _client_stream(args, payload) -> int:
    """NDJSON streaming client: progress to stderr, body to stdout."""
    import http.client
    import json

    payload = dict(payload, stream=True)
    conn = http.client.HTTPConnection(args.host, args.port,
                                      timeout=args.timeout)
    try:
        conn.request("POST", "/v1/run", body=json.dumps(payload),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        if response.status != 200:
            sys.stderr.write(response.read().decode("utf-8",
                                                    "replace"))
            return 1
        exit_code = 1
        for raw in response:
            line = raw.strip()
            if not line:
                continue
            event = json.loads(line)
            if event.get("event") == "result":
                body = event["body"].encode()
                if args.output:
                    with open(args.output, "wb") as fh:
                        fh.write(body)
                else:
                    sys.stdout.buffer.write(body)
                    sys.stdout.buffer.flush()
                print(f"client: {event.get('cache')} run "
                      f"{event.get('run_id')}", file=sys.stderr)
                exit_code = int(event.get("exit_code", 0))
            elif event.get("event") == "error":
                print(f"client: error: {event.get('message')}",
                      file=sys.stderr)
                exit_code = 1
            else:
                print(f"progress: {event.get('done')}/"
                      f"{event.get('total')}", file=sys.stderr)
        return exit_code
    finally:
        conn.close()


def _obs(args) -> int:
    """``obs``: ls / show / diff over the ledger, plus ``regress``."""
    import json

    from .obs import (
        bench_trend,
        default_ledger_path,
        diff_records,
        find_regressions,
        format_report,
        ledger_trend,
        read_ledger,
        resolve_record,
    )
    from .obs.ledger import canonical_payload_bytes, format_diff, format_ls

    path = args.ledger or default_ledger_path()
    if args.obs_command == "ls":
        records = read_ledger(path)
        if not records:
            print(f"ledger {path} is empty")
            return 0
        print(format_ls(records))
        return 0
    if args.obs_command == "show":
        try:
            _index, record = resolve_record(read_ledger(path), args.ref)
        except ValueError as exc:
            raise SystemExit(f"repro-lid obs show: {exc}")
        if args.canonical:
            sys.stdout.buffer.write(canonical_payload_bytes(record))
            sys.stdout.buffer.flush()
        else:
            print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    if args.obs_command == "diff":
        records = read_ledger(path)
        try:
            _ia, record_a = resolve_record(records, args.a)
            _ib, record_b = resolve_record(records, args.b)
        except ValueError as exc:
            raise SystemExit(f"repro-lid obs diff: {exc}")
        print(format_diff(diff_records(record_a, record_b)))
        return 0
    # regress: bench directories are explicit trajectory positions,
    # the ledger contributes per-span wall-time history.
    points = list(bench_trend(args.bench)) if args.bench else []
    if not args.no_ledger:
        points.extend(ledger_trend(read_ledger(path)))
    regressions = find_regressions(points, threshold=args.threshold,
                                   baseline=args.baseline)
    print(format_report(regressions, threshold=args.threshold))
    return 1 if regressions else 0


def _run_instrumented(graph, variant, cycles, telemetry):
    """Elaborate *graph*, attach *telemetry*, run *cycles* cycles."""
    from .lid.monitor import watch_system

    system = graph.elaborate(variant=variant)
    system.attach_telemetry(telemetry)
    watch_system(system)
    if telemetry.events is not None:
        telemetry.events.emit("run", "start", 0, topology=graph.name,
                              variant=str(variant), cycles=cycles)
    system.run(cycles)
    if telemetry.events is not None:
        telemetry.events.emit("run", "end", cycles)
    return system


def _write_metrics_snapshot(graph, args) -> None:
    """``analyze --metrics-out``: instrumented run + JSON snapshot."""
    import json

    from .bench.runner import git_rev
    from .obs import Telemetry

    telemetry = Telemetry.metrics_only()
    system = _run_instrumented(graph, args.variant, args.cycles, telemetry)
    payload = {
        "schema": "repro-metrics/v1",
        "topology": args.topology,
        "variant": str(args.variant),
        "cycles": args.cycles,
        "git_rev": git_rev(),
        "metrics": system.metrics_snapshot(),
    }
    with open(args.metrics_out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.metrics_out}")


def _reproduce(args) -> None:
    import json
    from time import perf_counter

    from .bench.runner import git_rev

    overall_started = perf_counter()
    registry = None
    if args.metrics_out:
        from .obs import MetricsRegistry

        registry = MetricsRegistry()

    def record(exp_id: str, wall: float, n_rows: int) -> None:
        if registry is None:
            return
        registry.gauge(f"bench/{exp_id}/wall_seconds").set(wall)
        registry.counter(f"bench/{exp_id}/rows").inc(n_rows)

    ledger_path = None
    if args.ledger is not None:
        from .obs import default_ledger_path

        ledger_path = args.ledger or default_ledger_path()
    progress = None
    if args.progress:
        from .obs import ProgressReporter

        progress = ProgressReporter(0, label="reproduce")

    if args.output:
        from .bench.runner import write_results

        for path in write_results(args.output, jobs=args.jobs,
                                  ledger=ledger_path,
                                  progress=progress):
            print(f"wrote {path}")
            if registry is not None and path.endswith(".json"):
                with open(path, encoding="utf-8") as fh:
                    rec = json.load(fh)
                record(rec["bench"], rec["wall_seconds"],
                       rec["counters"].get("rows", 0))
        if ledger_path:
            print(f"ledger: appended bench records to {ledger_path}",
                  file=sys.stderr)
    elif args.experiment:
        description, runner = EXPERIMENTS[args.experiment]
        started = perf_counter()
        table, rows = runner()
        record(args.experiment, perf_counter() - started, len(rows))
        print(f"[{args.experiment}] {description}\n")
        print(table)
    elif registry is not None:
        chunks = []
        for exp_id, (description, runner) in EXPERIMENTS.items():
            started = perf_counter()
            table, rows = runner()
            record(exp_id, perf_counter() - started, len(rows))
            chunks.append(f"[{exp_id}] {description}\n\n{table}\n")
        print("\n".join(chunks))
    else:
        print(run_all())

    if registry is not None:
        payload = {
            "schema": "repro-metrics/v1",
            "git_rev": git_rev(),
            "metrics": registry.snapshot(),
        }
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.metrics_out}")

    if ledger_path and not args.output:
        from .obs import make_record

        _ledger_note(args.ledger, make_record(
            "reproduce",
            params={"experiment": args.experiment or "all"},
            meta={"wall_seconds":
                  round(perf_counter() - overall_started, 6),
                  "jobs": args.jobs}))


def _inject(args) -> int:
    """``inject``: run a fault campaign and emit the report."""
    import json
    from time import perf_counter

    from .bench.runner import git_rev
    from .errors import InjectionError
    from .exec import GraphRef, ResultCache
    from .inject import run_campaign, skeleton_campaign
    from .obs import Telemetry

    graph = _parse_topology(args.topology, seed=args.seed)
    cycles, samples, exhaustive = args.cycles, args.samples, args.exhaustive
    if args.smoke:
        cycles, samples, exhaustive = 64, 12, False
    window = None
    if args.window:
        lo, _sep, hi = args.window.partition(":")
        window = (int(lo), int(hi))
    classes = tuple(
        item.strip() for item in args.faults.split(",") if item.strip())
    telemetry = None
    if args.metrics_out or args.trace_out:
        from .obs import EventStream, MetricsRegistry, Profiler

        telemetry = Telemetry(
            events=EventStream() if args.trace_out else None,
            metrics=MetricsRegistry() if args.metrics_out else None,
            profiler=Profiler() if args.trace_out else None)
    cache = None if args.no_cache else ResultCache.disk(args.cache_dir)

    # The jobs count stays out of the canonical params: a serial and a
    # --jobs N run of the same campaign must share span and run ids.
    params = {
        "engine": args.engine,
        "backend": args.backend,
        "cycles": cycles,
        "samples": samples,
        "seed": args.seed,
        "classes": list(classes),
        "exhaustive": bool(exhaustive),
        "window": list(window) if window else None,
        "strict": bool(args.strict),
    }
    fingerprint = span = trace = None
    if args.ledger is not None or args.trace_out:
        from .exec import graph_fingerprint
        from .obs import span_id

        fingerprint = graph_fingerprint(graph)
        span = span_id("inject-campaign", fingerprint,
                       str(args.variant), params)
    if args.trace_out:
        from .exec import TraceCollection

        trace = TraceCollection(run_id=span)
    progress = None
    if args.progress:
        from .obs import ProgressReporter

        progress = ProgressReporter(
            0, label="inject",
            stream=telemetry.events if telemetry is not None else None,
            cache=cache.stats if cache is not None else None)

    common = dict(variant=args.variant, classes=classes, cycles=cycles,
                  window=window, exhaustive=exhaustive, samples=samples,
                  seed=args.seed, telemetry=telemetry, jobs=args.jobs,
                  cache=cache, progress=progress, trace=trace)
    started = perf_counter()
    try:
        if args.engine == "skeleton":
            report = skeleton_campaign(graph, backend=args.backend,
                                       strict=args.strict, **common)
        else:
            report = run_campaign(
                graph, strict=args.strict,
                graph_ref=GraphRef.from_spec(args.topology,
                                             seed=args.seed),
                **common)
    except InjectionError as exc:
        raise SystemExit(f"repro-lid inject: {exc}")
    wall = perf_counter() - started

    if args.format == "json":
        text = report.to_json()
    else:
        text = report.format_table() + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        counts = report.counts()
        summary = "  ".join(f"{k}={v}" for k, v in counts.items())
        execution = report.execution or {}
        extra = f"  jobs={execution.get('jobs', 1)}"
        stats = execution.get("cache")
        if stats is not None:
            extra += (f" cache-hits={stats['hits']}"
                      f" cache-misses={stats['misses']}")
        print(f"wrote {args.output}: {len(report.results)} experiments "
              f"(seed {args.seed}): {summary}{extra}")
    else:
        print(text, end="")

    if args.metrics_out:
        payload = {
            "schema": "repro-metrics/v1",
            "topology": args.topology,
            "variant": str(args.variant),
            "seed": args.seed,
            "git_rev": git_rev(),
            "metrics": telemetry.metrics.snapshot(),
        }
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.metrics_out}")

    if args.trace_out:
        from .obs import write_merged_chrome_trace

        merged = write_merged_chrome_trace(
            telemetry.events, trace.traces if trace is not None else (),
            args.trace_out, profiler=telemetry.profiler, run_id=span)
        other = merged.get("otherData", {})
        print(f"wrote {args.trace_out}: merged trace, "
              f"{other.get('worker_lanes', 0)} worker lane(s), "
              f"{other.get('emitted', 0)} events emitted, "
              f"{other.get('dropped', 0)} dropped")

    if args.ledger is not None:
        from .obs import make_record

        execution = report.execution or {}
        meta = {"wall_seconds": round(wall, 6), "jobs": args.jobs}
        if execution.get("cache") is not None:
            meta["cache"] = execution["cache"]
        _ledger_note(args.ledger, make_record(
            "inject-campaign",
            topology=args.topology,
            fingerprint=fingerprint,
            variant=str(args.variant),
            params=params,
            verdict=dict(report.counts()),
            metrics=(telemetry.metrics.snapshot()
                     if telemetry is not None
                     and telemetry.metrics is not None else None),
            meta=meta))
    return 0


def _trace(args) -> int:
    import sys as _sys

    from .obs import Telemetry
    from .obs.exporters import export_stream

    graph = _parse_topology(args.topology, seed=args.seed)
    telemetry = Telemetry.full()
    if args.engine == "skeleton":
        from .skeleton import SkeletonSim

        sim = SkeletonSim(graph, variant=args.variant,
                          telemetry=telemetry)
        for _ in range(args.cycles):
            sim.step()
    else:
        _run_instrumented(graph, args.variant, args.cycles, telemetry)
    stream = telemetry.events
    if args.output:
        export_stream(stream, args.output, args.format)
        first, last = stream.cycle_span()
        print(f"wrote {args.output}: {len(stream)} events retained "
              f"({stream.emitted} emitted, {stream.dropped} dropped), "
              f"cycles {first}..{last}")
    else:
        export_stream(stream, _sys.stdout, args.format)
    if stream.dropped:
        print(f"warning: dropped={stream.dropped} of {stream.emitted} "
              f"events (ring capacity {stream.capacity}; oldest "
              f"evicted first)", file=_sys.stderr)
    return 0


def _profile(args) -> int:
    import json

    from .obs import Telemetry
    from .obs.exporters import write_chrome_trace

    graph = _parse_topology(args.topology, seed=args.seed)
    telemetry = Telemetry.full()
    _run_instrumented(graph, args.variant, args.cycles, telemetry)
    profiler = telemetry.profiler
    if args.json:
        text = json.dumps(profiler.report(), indent=2, sort_keys=True)
    else:
        text = profiler.format_table(
            title=f"profile: {args.topology} ({args.cycles} cycles, "
                  f"{args.variant})")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    if args.trace_out:
        write_chrome_trace(telemetry.events.events(), args.trace_out,
                           profiler=profiler)
        print(f"wrote {args.trace_out}")
    return 0


def _export(args) -> str:
    if args.what in ("dot", "json"):
        if not args.topology:
            raise SystemExit("--topology required for dot/json export")
        graph = _parse_topology(args.topology, seed=args.seed)
        if args.what == "dot":
            from .graph import to_dot

            return to_dot(graph)
        import json as _json

        from .graph import to_dict

        return _json.dumps(to_dict(graph), indent=2, sort_keys=True)
    from .rtl import (
        emit_vhdl,
        full_relay_station_netlist,
        half_relay_station_netlist,
        identity_shell_netlist,
    )

    builders = {
        "relay-vhdl": full_relay_station_netlist,
        "half-relay-vhdl": half_relay_station_netlist,
        "shell-vhdl": identity_shell_netlist,
    }
    return emit_vhdl(builders[args.what](args.width))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

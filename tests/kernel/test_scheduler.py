"""Unit tests for the two-phase scheduler."""

import pytest

from repro.errors import ConvergenceError
from repro.kernel.component import Component
from repro.kernel.scheduler import Simulator


class CountingReg(Component):
    """Moore counter: publishes its register, increments on tick."""

    def __init__(self, name, out):
        super().__init__(name)
        self.out = out
        self.count = 0

    def reset(self):
        self.count = 0

    def publish(self):
        self.out.set(self.count)

    def tick(self):
        self.count += 1


class Follower(Component):
    """Mealy: drives out = in during settle (combinational buffer)."""

    def __init__(self, name, inp, out):
        super().__init__(name)
        self.inp = inp
        self.out = out

    def settle(self):
        if self.inp.value:
            self.out.set(True)


class NonMonotone(Component):
    """Toggles a signal on every settle pass — never converges."""

    def __init__(self, name, sig):
        super().__init__(name)
        self.sig = sig

    def settle(self):
        self.sig.set(not self.sig.value)


class TestSimulator:
    def test_cycle_counter_advances(self):
        sim = Simulator()
        sim.reset()
        sim.step(5)
        assert sim.cycle == 5

    def test_moore_component_publishes(self):
        sim = Simulator()
        out = sim.signal("out", default=None)
        sim.add_component(CountingReg("cnt", out))
        values = []
        sim.add_cycle_hook(lambda s: values.append(out.value))
        sim.step(3)
        assert values == [0, 1, 2]

    def test_step_auto_resets(self):
        sim = Simulator()
        out = sim.signal("out")
        sim.add_component(CountingReg("cnt", out))
        sim.step(1)  # no explicit reset
        assert sim.cycle == 1

    def test_combinational_chain_settles(self):
        sim = Simulator()
        a = sim.signal("a", default=False)
        b = sim.signal("b", default=False)
        c = sim.signal("c", default=False)

        class Driver(Component):
            def settle(self):
                a.set(True)

        # Deliberately add followers before the driver: the fixpoint
        # loop must still propagate a -> b -> c within one cycle.
        sim.add_component(Follower("f2", b, c))
        sim.add_component(Follower("f1", a, b))
        sim.add_component(Driver("drv"))
        seen = []
        sim.add_cycle_hook(lambda s: seen.append((a.value, b.value, c.value)))
        sim.step(1)
        assert seen == [(True, True, True)]

    def test_non_monotone_raises_convergence_error(self):
        sim = Simulator()
        sig = sim.signal("s", default=False)
        sim.add_component(NonMonotone("bad", sig))
        with pytest.raises(ConvergenceError):
            sim.step(1)

    def test_signal_reuse_by_name(self):
        sim = Simulator()
        a = sim.signal("x", default=1)
        b = sim.signal("x")
        assert a is b

    def test_find_signal(self):
        sim = Simulator()
        sig = sim.signal("findme")
        assert sim.find_signal("findme") is sig
        assert sim.find_signal("nope") is None

    def test_run_until_returns_hit_cycle(self):
        sim = Simulator()
        out = sim.signal("out")
        sim.add_component(CountingReg("cnt", out))
        hit = sim.run_until(lambda s: out.value == 4)
        assert hit == 4

    def test_run_until_times_out(self):
        sim = Simulator()
        out = sim.signal("out")
        sim.add_component(CountingReg("cnt", out))
        with pytest.raises(TimeoutError):
            sim.run_until(lambda s: False, max_cycles=10)

    def test_settle_resets_nonsticky_signals_each_cycle(self):
        sim = Simulator()
        stop = sim.signal("stop", default=False)

        class OneShot(Component):
            def __init__(self):
                super().__init__("oneshot")

            def settle(self):
                if self.cycle == 0:
                    stop.set(True)

        comp = OneShot()
        sim.add_component(comp)
        seen = []
        sim.add_cycle_hook(lambda s: seen.append(stop.value))
        sim.step(2)
        assert seen == [True, False]

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import LidSystem, pearls
from repro.lid.reference import is_prefix


def build_pipeline(stages=2, relays=1, pearl_factory=pearls.Identity,
                   stop_script=None, stream=None):
    """source -> stages x (shell + relays) -> sink, fully wired."""
    system = LidSystem("pipe")
    src = system.add_source("src", stream=stream)
    shells = [
        system.add_shell(f"S{i}", pearl_factory()) for i in range(stages)
    ]
    sink = system.add_sink("out", stop_script=stop_script)
    system.connect(src, shells[0])
    for a, b in zip(shells, shells[1:]):
        system.connect(a, b, relays=relays)
    system.connect(shells[-1], sink)
    return system, sink


def assert_latency_equivalent(system, cycles, sinks=None):
    """The central oracle: every sink's payload stream must be a prefix
    of the zero-latency reference stream."""
    reference = system.reference_outputs(cycles)
    names = sinks or list(system.sinks)
    for name in names:
        lid_stream = system.sinks[name].payloads
        ref_stream = reference[name]
        assert is_prefix(lid_stream, ref_stream), (
            f"sink {name}: {lid_stream[:10]} not a prefix of "
            f"{ref_stream[:10]}"
        )


@pytest.fixture
def pipe():
    """A small ready-made pipeline system (not yet run)."""
    return build_pipeline()


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep the golden-run disk cache out of the user's home directory.

    ``repro-lid inject`` defaults to an on-disk cache; tests must stay
    hermetic, so every test gets a throwaway cache directory unless it
    points somewhere explicitly.
    """
    monkeypatch.setenv("REPRO_LID_CACHE_DIR", str(tmp_path / "lid-cache"))

"""EXP-T1: trees run at throughput 1 with transient <= longest path.

Paper: "The simplest topology is a tree.  The throughput of each node
... is 1.  However ... the initial latency for each node before firing
at full speed can be as much as the longest path in the tree."
"""

import pytest

from repro.analysis import first_full_speed_cycle, longest_register_path
from repro.bench.runner import run_tree
from repro.graph import tree
from repro.skeleton import SkeletonSim


def test_bench_tree_table(benchmark, emit):
    table, rows = benchmark(run_tree)
    emit("EXP-T1-trees", table)
    assert all(row[3] == "1" for row in rows)      # throughput 1
    assert all(row[-1] for row in rows)            # within bound


@pytest.mark.parametrize("depth", [2, 3, 4])
def test_bench_tree_scaling(benchmark, depth):
    graph = tree(depth)

    def run():
        return SkeletonSim(graph).run()

    result = benchmark(run)
    assert result.min_shell_throughput() == 1


def test_bench_tree_latency_bound(benchmark):
    graph = tree(3, relays_per_hop=2)

    def run():
        return first_full_speed_cycle(graph)

    full_speed = benchmark(run)
    assert full_speed <= longest_register_path(graph)

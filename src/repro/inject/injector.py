"""Injector runtime: applies one :class:`FaultSpec` to a live system.

A :class:`FaultInjector` binds a spec to the concrete channel / relay /
shell of an elaborated :class:`~repro.lid.system.LidSystem` and
registers itself with the simulator's injection phases
(:meth:`~repro.kernel.scheduler.Simulator.add_injection_hook`):

* wire faults run after the settle fixpoint, so monitors and the edge
  phase observe the faulted wires;
* state faults run after the edge phase, corrupting registers as they
  latch.

When the system carries :class:`~repro.obs.Telemetry`, the injector
emits an ``inject/arm`` event when attached and an ``inject/fire``
event on every cycle it actually perturbs state, so an exported trace
shows the fault alongside the protocol events it provokes.
"""

from __future__ import annotations

from typing import Optional

from ..errors import InjectionError
from ..kernel.scheduler import Simulator
from .faults import FaultSpec


def default_corruptor(value):
    """Deterministic payload corruption: flip bit 0 of ints, tag others."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ 1
    return ("corrupt", value)


class FaultInjector:
    """Applies a single fault spec to one elaborated LID system."""

    def __init__(self, spec: FaultSpec, system):
        self.spec = spec
        self.system = system
        self.fired_cycles = []
        self._prev_stop = False
        self._channel = None
        self._relay = None
        self._shell = None
        self._resolve()

    # -- wiring ------------------------------------------------------------

    def _resolve(self) -> None:
        spec = self.spec
        if spec.phase == "wire":
            for chan in self.system.channels:
                if chan.name == spec.target:
                    self._channel = chan
                    return
            raise InjectionError(
                f"no channel named {spec.target!r} (channels: "
                f"{[c.name for c in self.system.channels]})"
            )
        if spec.kind in ("relay-drop", "relay-duplicate"):
            relay = self.system.relays.get(spec.target)
            if relay is None:
                raise InjectionError(
                    f"no relay station named {spec.target!r} (relays: "
                    f"{list(self.system.relays)})"
                )
            if spec.kind == "relay-duplicate" and relay.registers < 2:
                raise InjectionError(
                    f"{spec.target!r} is a one-register station; it "
                    f"cannot express a duplicate fault"
                )
            self._relay = relay
            return
        shell = self.system.shells.get(spec.target)
        if shell is None:
            raise InjectionError(
                f"no shell named {spec.target!r} (shells: "
                f"{list(self.system.shells)})"
            )
        self._shell = shell

    def attach(self) -> "FaultInjector":
        """Register with the simulator's injection phase; emit arm."""
        sim = self.system.sim
        sim.add_injection_hook(self._hook, phase=self.spec.phase)
        self._emit("arm", sim.cycle)
        return self

    # -- per-cycle ---------------------------------------------------------

    def _hook(self, sim: Simulator) -> None:
        spec = self.spec
        cycle = sim.cycle
        if spec.kind == "delayed-stop":
            # Track the true settled stop every cycle so the first
            # active cycle already has a one-cycle-old value to present.
            settled = bool(self._channel.stop.value)
            if spec.active(cycle):
                changed = settled != self._prev_stop
                self._channel.force_stop(self._prev_stop)
                if changed:
                    self._fired(cycle, forced=self._prev_stop)
            self._prev_stop = settled
            return
        if not spec.active(cycle):
            return
        if spec.kind in ("stop-stuck-1", "stop-stuck-0"):
            level = spec.kind.endswith("1")
            if bool(self._channel.stop.value) != level:
                self._channel.force_stop(level)
                self._fired(cycle, forced=level)
        elif spec.kind == "stop-glitch":
            level = not self._channel.stop.value
            self._channel.force_stop(level)
            self._fired(cycle, forced=level)
        elif spec.kind in ("void-glitch", "valid-stuck-0"):
            if self._channel.valid.value:
                self._channel.force_valid(False)
                self._fired(cycle, forced=False)
        elif spec.kind == "valid-stuck-1":
            if not self._channel.valid.value:
                payload = 0 if spec.value is None else spec.value
                self._channel.force_valid(True, data=payload)
                self._fired(cycle, forced=True)
        elif spec.kind == "payload":
            if self._channel.valid.value:
                before = self._channel.data.value
                after = (spec.value if spec.value is not None
                         else default_corruptor(before))
                if after != before:
                    self._channel.force_payload(after)
                    self._fired(cycle, payload=repr(after))
        elif spec.kind == "relay-drop":
            if self._relay.inject_drop():
                self._fired(cycle)
        elif spec.kind == "relay-duplicate":
            if self._relay.inject_duplicate():
                self._fired(cycle)
        elif spec.kind == "shell-corrupt":
            mutate = (spec.value if callable(spec.value)
                      else default_corruptor)
            if self._shell.inject_corrupt_outputs(mutate):
                self._fired(cycle)

    # -- accounting --------------------------------------------------------

    @property
    def fired(self) -> bool:
        """Did the fault perturb anything at all?

        A fault that never changed a wire or register (e.g. forcing an
        already-low stop) is masked by construction.
        """
        return bool(self.fired_cycles)

    def _fired(self, cycle: int, **fields) -> None:
        self.fired_cycles.append(cycle)
        self._emit("fire", cycle, **fields)

    def _emit(self, name: str, cycle: int, **fields) -> None:
        telemetry = self.system.telemetry
        if telemetry is None or telemetry.events is None:
            return
        telemetry.events.emit(
            "inject", name, cycle, kind=self.spec.kind,
            target=self.spec.target, at=self.spec.cycle,
            duration=self.spec.duration, **fields)

"""JSON (de)serialization of system graphs.

Topologies are experiment specifications; being able to check them into
a repository, diff them and reload them matters for reproducibility.
Structure round-trips exactly; behaviour round-trips for the built-in
pearls (stored by registered name + constructor kwargs).  Custom pearl
factories serialize with a placeholder and must be re-registered on
load via the *registry* argument.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional

from ..errors import StructuralError
from ..pearls import (
    Accumulator,
    Adder,
    Alu,
    Butterfly,
    Counter,
    Decimator,
    Delay,
    Fibonacci,
    FirFilter,
    Identity,
    IirFilter,
    Mac,
    Maximum,
    MovingAverage,
    Multiplier,
    Scaler,
    Subtractor,
    Toggle,
)
from .model import DEFAULT_DOMAIN, BridgeSpec, SystemGraph

#: Built-in pearls addressable by name in serialized graphs.
PEARL_REGISTRY: Dict[str, Callable] = {
    cls.__name__: cls
    for cls in (
        Accumulator, Adder, Alu, Butterfly, Counter, Decimator, Delay,
        Fibonacci, FirFilter, Identity, IirFilter, Mac, Maximum,
        MovingAverage, Multiplier, Scaler, Subtractor, Toggle,
    )
}


def pearl_spec(name: str, **kwargs) -> Callable:
    """A serializable pearl factory: built-in class name + kwargs.

    Use these in graphs you intend to save::

        graph.add_shell("fir", pearl_spec("FirFilter", taps=(1, 2, 1)))
    """
    if name not in PEARL_REGISTRY:
        raise StructuralError(
            f"unknown pearl {name!r}; registered: "
            f"{sorted(PEARL_REGISTRY)}"
        )
    cls = PEARL_REGISTRY[name]

    def factory():
        return cls(**kwargs)

    factory.pearl_name = name
    factory.pearl_kwargs = dict(kwargs)
    return factory


def to_dict(graph: SystemGraph) -> Dict[str, Any]:
    """Serialize *graph* to a JSON-compatible dictionary."""
    nodes = []
    for node in graph.nodes.values():
        entry: Dict[str, Any] = {"name": node.name, "kind": node.kind}
        if node.queue_depth is not None:
            entry["queue_depth"] = node.queue_depth
        if node.domain != DEFAULT_DOMAIN:
            entry["domain"] = node.domain
        if node.kind == "shell":
            factory = node.pearl_factory
            name = getattr(factory, "pearl_name", None)
            if name is None and isinstance(factory, type) \
                    and factory.__name__ in PEARL_REGISTRY:
                name = factory.__name__
            if name is not None:
                entry["pearl"] = name
                entry["pearl_kwargs"] = getattr(
                    factory, "pearl_kwargs", {})
            else:
                entry["pearl"] = None  # custom factory: re-register
        nodes.append(entry)
    edges = []
    for e in graph.edges:
        entry = {
            "src": e.src, "dst": e.dst,
            "src_port": e.src_port, "dst_port": e.dst_port,
            "relays": list(e.relays),
        }
        if e.bridge is not None:
            entry["bridge"] = {"depth": e.bridge.depth}
        edges.append(entry)
    payload = {"name": graph.name, "nodes": nodes, "edges": edges}
    extra_domains = {
        name: [rate.numerator, rate.denominator]
        for name, rate in graph.domains.items()
        if name != DEFAULT_DOMAIN
    }
    if extra_domains:
        payload["domains"] = extra_domains
    return payload


def from_dict(data: Dict[str, Any],
              registry: Optional[Dict[str, Callable]] = None
              ) -> SystemGraph:
    """Rebuild a graph from :func:`to_dict` output.

    *registry* maps custom pearl names (or node names, checked second)
    to factories for shells that serialized with ``pearl: null``.
    """
    registry = registry or {}
    graph = SystemGraph(data.get("name", "loaded"))
    for name, rate in data.get("domains", {}).items():
        graph.add_domain(name, tuple(rate) if isinstance(rate, list)
                         else rate)
    for node in data["nodes"]:
        kind = node["kind"]
        domain = node.get("domain", DEFAULT_DOMAIN)
        if kind == "source":
            graph.add_source(node["name"], domain=domain)
        elif kind == "sink":
            graph.add_sink(node["name"], domain=domain)
        elif kind == "shell":
            pearl = node.get("pearl")
            if pearl is not None:
                factory = pearl_spec(pearl, **node.get("pearl_kwargs",
                                                       {}))
            elif node["name"] in registry:
                factory = registry[node["name"]]
            else:
                raise StructuralError(
                    f"shell {node['name']!r} used a custom pearl; pass "
                    f"a factory for it in `registry`"
                )
            depth = node.get("queue_depth")
            if depth is not None:
                graph.add_queued_shell(node["name"], factory,
                                       queue_depth=depth, domain=domain)
            else:
                graph.add_shell(node["name"], factory, domain=domain)
        else:
            raise StructuralError(f"unknown node kind {kind!r}")
    for edge in data["edges"]:
        bridge = edge.get("bridge")
        graph.add_edge(
            edge["src"], edge["dst"],
            relays=tuple(edge.get("relays", ())),
            src_port=edge.get("src_port"),
            dst_port=edge.get("dst_port"),
            bridge=BridgeSpec(depth=bridge["depth"])
            if bridge is not None else None,
        )
    return graph


def save_graph(graph: SystemGraph, path: str) -> None:
    """Write *graph* to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_dict(graph), fh, indent=2, sort_keys=True)


def load_graph(path: str,
               registry: Optional[Dict[str, Callable]] = None
               ) -> SystemGraph:
    """Load a graph saved by :func:`save_graph`."""
    with open(path, "r", encoding="utf-8") as fh:
        return from_dict(json.load(fh), registry=registry)

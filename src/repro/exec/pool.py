"""Deterministic process-pool fan-out: ``map_deterministic``.

The contract that makes ``--jobs N`` safe for byte-reproducible
reports: the result of ``map_deterministic(fn, units, jobs)`` is the
exact list ``[fn(u) for u in units]`` for *every* value of ``jobs`` —
same elements, same order.  Parallelism changes only the wall clock.

How that is achieved:

* units are split into **contiguous chunks** in input order (no
  work-stealing, no as-completed reordering);
* every chunk is submitted up front and the futures are drained in
  **submission order**, so the merged list is the concatenation of the
  chunk results in their original positions;
* worker exceptions are pickled back by :mod:`concurrent.futures` and
  re-raised here with their original type — a campaign worker that
  raises :class:`repro.errors.InjectionError` surfaces as an
  ``InjectionError``, not as some pool wrapper;
* a worker process that *dies* (rather than raises) surfaces as
  :class:`repro.errors.WorkerCrashError`, keeping the
  :class:`repro.errors.ReproError` taxonomy closed.

``fn`` and every unit must be picklable (module-level functions,
``functools.partial`` of module-level functions, frozen dataclasses).
For callables that must be named across the process boundary there is
the :class:`WorkUnit` indirection: ``"module:qualname"`` plus args.

**Worker tracing** (``trace=``): a :class:`TraceCollection` threads a
run/span id through the fan-out; each chunk then runs with a fresh
worker-local :class:`~repro.obs.Telemetry` (events + profiler) that
unit functions can reach via :func:`worker_telemetry`, and the
recorded events/phases travel back as picklable :class:`WorkerTrace`
records — one per chunk, in deterministic chunk order — ready for
:func:`repro.obs.exporters.merged_chrome_trace`.  Tracing never
touches the unit *results*, so the byte-determinism contract is
unchanged.

**Live progress** (``progress=``): a
:class:`~repro.obs.progress.ProgressReporter` is advanced as units
complete — per unit on the serial path, per finished chunk (in
wall-clock completion order, via future callbacks) on the parallel
path.  Progress is pure driver-side side channel output; results and
their order are unaffected.
"""

from __future__ import annotations

import dataclasses
import importlib
import math
import os
from typing import (Any, Callable, Dict, Iterable, List, Optional,
                    Sequence, Tuple)

from ..errors import ExecutionError, WorkerCrashError

#: Worker-process-local telemetry installed by :func:`_run_chunk_traced`
#: for the duration of one chunk; ``None`` outside traced chunks.
_WORKER_TELEMETRY: Any = None


def worker_telemetry():
    """The chunk-local :class:`~repro.obs.Telemetry`, if tracing is on.

    Unit functions running under a traced ``map_deterministic`` call
    this to emit events / profile phases into the worker's lane of the
    merged trace.  Returns ``None`` on untraced runs (including every
    serial run — the caller's own telemetry covers those).
    """
    return _WORKER_TELEMETRY


def _run_chunk(fn: Callable[[Any], Any], chunk: Sequence[Any]) -> List[Any]:
    """Worker-side body: apply *fn* to one contiguous chunk, in order."""
    return [fn(unit) for unit in chunk]


@dataclasses.dataclass(frozen=True)
class WorkerTrace:
    """Picklable record of one traced chunk's telemetry.

    ``events`` holds the worker's retained events as plain dicts
    (:meth:`~repro.obs.events.Event.to_dict` renderings, emission
    order preserved); ``emitted`` / ``dropped`` carry the ring-buffer
    accounting so drops survive the merge; ``phases`` is the worker
    profiler's ``(name, calls, seconds)`` table.
    """

    chunk_index: int
    pid: int
    run_id: Optional[str]
    units: int
    events: Tuple[Dict[str, Any], ...]
    emitted: int
    dropped: int
    phases: Tuple[Tuple[str, int, float], ...]


@dataclasses.dataclass
class TraceCollection:
    """Parent-side accumulator for :class:`WorkerTrace` records.

    Created by the driver (one per traced run, carrying the run/span
    id), filled by ``map_deterministic`` in chunk-submission order.
    """

    run_id: Optional[str] = None
    traces: List[WorkerTrace] = dataclasses.field(default_factory=list)

    @property
    def dropped(self) -> int:
        return sum(trace.dropped for trace in self.traces)

    @property
    def emitted(self) -> int:
        return sum(trace.emitted for trace in self.traces)


def _run_chunk_traced(
    fn: Callable[[Any], Any],
    chunk: Sequence[Any],
    chunk_index: int,
    run_id: Optional[str],
    capacity: Optional[int],
) -> Tuple[List[Any], WorkerTrace]:
    """Worker-side body of a traced chunk.

    Installs a fresh chunk-local telemetry bundle (events + profiler)
    behind :func:`worker_telemetry`, runs the chunk, and ships the
    recorded telemetry home as a picklable :class:`WorkerTrace`.
    """
    global _WORKER_TELEMETRY
    from ..obs import EventStream, Profiler, Telemetry

    telemetry = Telemetry(events=EventStream(capacity=capacity),
                          profiler=Profiler())
    _WORKER_TELEMETRY = telemetry
    try:
        results = [fn(unit) for unit in chunk]
    finally:
        _WORKER_TELEMETRY = None
    stream = telemetry.events
    trace = WorkerTrace(
        chunk_index=chunk_index,
        pid=os.getpid(),
        run_id=run_id,
        units=len(chunk),
        events=tuple(event.to_dict() for event in stream.events()),
        emitted=stream.emitted,
        dropped=stream.dropped,
        phases=tuple(telemetry.profiler.phases()),
    )
    return results, trace


def chunk_units(units: Sequence[Any], jobs: int,
                chunk_size: Optional[int] = None) -> List[Sequence[Any]]:
    """Split *units* into contiguous chunks (deterministic in inputs).

    The default size aims at ~4 chunks per worker: big enough to
    amortize pickling, small enough that one slow chunk cannot idle the
    other workers for long.  The split depends only on ``(len(units),
    jobs, chunk_size)`` — never on timing.
    """
    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(units) / (jobs * 4)))
    if chunk_size < 1:
        raise ExecutionError(f"chunk_size must be >= 1, got {chunk_size}")
    return [units[i:i + chunk_size]
            for i in range(0, len(units), chunk_size)]


def plane_chunks(units: Sequence[Any],
                 width: int = 64) -> List[Sequence[Any]]:
    """Split *units* into bit-plane groups for the bitsim engine.

    Each group holds at most ``width - 1`` units: the campaign packs a
    golden (fault-free) baseline into plane 0 of every group, so a
    group of 63 experiments plus its golden fills one 64-bit machine
    word — Python integers beyond that are exact but slower.  The
    split depends only on ``(len(units), width)``, never on timing, so
    chunked campaigns stay byte-reproducible.
    """
    if width < 2:
        raise ExecutionError(f"width must be >= 2, got {width}")
    per_group = width - 1
    return [units[i:i + per_group]
            for i in range(0, len(units), per_group)]


def map_deterministic(
    fn: Callable[[Any], Any],
    units: Iterable[Any],
    jobs: int = 1,
    *,
    chunk_size: Optional[int] = None,
    trace: Optional[TraceCollection] = None,
    trace_capacity: Optional[int] = None,
    progress=None,
) -> List[Any]:
    """``[fn(u) for u in units]``, fanned across *jobs* processes.

    ``jobs <= 1`` (the default) runs serially in-process — no pool, no
    pickling, no spawn cost; this is also the reference semantics the
    parallel path must reproduce byte-for-byte.

    *trace* collects per-chunk worker telemetry (see module docstring);
    it is only populated on the parallel path — serial runs have no
    worker lanes, the caller's own telemetry already sees everything.
    *progress* is a :class:`~repro.obs.progress.ProgressReporter`
    advanced as units complete.  Neither affects results or ordering.
    """
    units = list(units)
    if jobs is None or jobs <= 1 or len(units) <= 1:
        results = []
        for unit in units:
            results.append(fn(unit))
            if progress is not None:
                progress.advance(1)
        return results

    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    jobs = min(jobs, len(units))
    chunks = chunk_units(units, jobs, chunk_size)
    results: List[Any] = []
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            if trace is not None:
                futures = [
                    pool.submit(_run_chunk_traced, fn, chunk, index,
                                trace.run_id, trace_capacity)
                    for index, chunk in enumerate(chunks)
                ]
            else:
                futures = [pool.submit(_run_chunk, fn, chunk)
                           for chunk in chunks]
            if progress is not None:
                # Completion callbacks fire in wall-clock order — fine
                # for a stderr side channel; the *results* below are
                # still drained in submission order.
                for future, chunk in zip(futures, chunks):
                    future.add_done_callback(
                        lambda _f, n=len(chunk): progress.advance(n))
            for future in futures:
                outcome = future.result()
                if trace is not None:
                    chunk_results, worker_trace = outcome
                    results.extend(chunk_results)
                    trace.traces.append(worker_trace)
                else:
                    results.extend(outcome)
    except BrokenProcessPool as exc:
        raise WorkerCrashError(
            f"a worker process died while mapping {len(units)} units "
            f"across {jobs} jobs (chunk results already merged: "
            f"{len(results)})") from exc
    return results


@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """A picklable, self-describing unit of work.

    ``fn`` names a module-level callable as ``"module:qualname"``; the
    worker resolves it with :func:`resolve_callable` and applies the
    args.  Use this when the callable itself cannot be captured in a
    closure/partial (or when units must be serialized to disk, e.g. a
    campaign manifest).
    """

    fn: str
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def __call__(self) -> Any:
        return run_unit(self)


def resolve_callable(ref: str) -> Callable[..., Any]:
    """``"module:qualname"`` -> the callable, or :class:`ExecutionError`."""
    module_name, sep, qualname = ref.partition(":")
    if not sep or not module_name or not qualname:
        raise ExecutionError(
            f"work-unit callable reference must be 'module:qualname', "
            f"got {ref!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ExecutionError(
            f"cannot import module {module_name!r} for work unit "
            f"{ref!r}: {exc}") from exc
    obj: Any = module
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError:
            raise ExecutionError(
                f"{module_name!r} has no attribute path {qualname!r} "
                f"(work unit {ref!r})") from None
    if not callable(obj):
        raise ExecutionError(f"work unit {ref!r} is not callable")
    return obj


def run_unit(unit: WorkUnit) -> Any:
    """Execute one :class:`WorkUnit` (worker-side entry point)."""
    fn = resolve_callable(unit.fn)
    return fn(*unit.args, **dict(unit.kwargs))

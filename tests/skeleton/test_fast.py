"""Tests for throughput measurement and cost comparison."""

from fractions import Fraction

import pytest

from repro.graph import figure1, figure2, pipeline
from repro.skeleton import (
    CostComparison,
    compare_cost,
    measure_throughput,
    system_throughput,
)


class TestMeasureThroughput:
    def test_reports_all_blocks(self):
        rates = measure_throughput(figure1())
        assert set(rates) == {"A", "B0", "C", "out"}

    def test_exact_fractions(self):
        rates = measure_throughput(figure1())
        assert all(isinstance(r, Fraction) for r in rates.values())
        assert rates["out"] == Fraction(4, 5)

    def test_system_throughput_is_min(self):
        assert system_throughput(figure2()) == Fraction(1, 2)
        assert system_throughput(pipeline(2)) == 1


class TestCompareCost:
    def test_returns_positive_times(self):
        comparison = compare_cost(pipeline(3), cycles=200)
        assert comparison.skeleton_seconds > 0
        assert comparison.full_seconds > 0
        assert comparison.cycles == 200

    def test_skeleton_is_faster(self):
        comparison = compare_cost(pipeline(8, relays_per_hop=2),
                                  cycles=400)
        assert comparison.speedup > 1.0

    def test_speedup_property(self):
        c = CostComparison(cycles=10, skeleton_seconds=1.0,
                           full_seconds=4.0)
        assert c.speedup == 4.0

    def test_zero_skeleton_time(self):
        c = CostComparison(cycles=1, skeleton_seconds=0.0,
                           full_seconds=1.0)
        assert c.speedup == float("inf")

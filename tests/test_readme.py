"""The README's code examples must actually run."""

import re
from pathlib import Path

import pytest

README = Path(__file__).parent.parent / "README.md"


def python_blocks():
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, re.S)


class TestReadme:
    def test_has_python_example(self):
        assert python_blocks()

    def test_quickstart_block_runs(self, capsys):
        block = python_blocks()[0]
        exec(compile(block, "README-quickstart", "exec"), {})
        out = capsys.readouterr().out
        assert out.strip()  # it prints the streams

    def test_mentions_every_package(self):
        text = README.read_text(encoding="utf-8")
        for package in ("repro.kernel", "repro.lid", "repro.pearls",
                        "repro.graph", "repro.analysis",
                        "repro.skeleton", "repro.verify", "repro.rtl",
                        "repro.bench"):
            assert package in text, package

    def test_install_instructions_present(self):
        text = README.read_text(encoding="utf-8")
        assert "pip install -e ." in text

    def test_paper_reference_present(self):
        text = README.read_text(encoding="utf-8")
        assert "DATE" in text and "2004" in text
        assert "Casu" in text and "Macchiarulo" in text


class TestDocsTree:
    @pytest.mark.parametrize("name", [
        "DESIGN.md", "EXPERIMENTS.md", "docs/protocol.md",
        "docs/theory.md", "docs/api.md", "docs/reproduction_guide.md",
        "docs/observability.md",
    ])
    def test_document_exists_and_substantial(self, name):
        path = README.parent / name
        assert path.exists(), name
        assert len(path.read_text(encoding="utf-8")) > 1500, name

    def test_design_lists_every_experiment(self):
        design = (README.parent / "DESIGN.md").read_text(encoding="utf-8")
        experiments = (README.parent / "EXPERIMENTS.md").read_text(
            encoding="utf-8")
        from repro.bench.runner import EXPERIMENTS

        for exp_id in EXPERIMENTS:
            assert exp_id in design, exp_id
            assert exp_id in experiments, exp_id

"""Behavioural tests for relay stations (full and half)."""

import pytest

from repro import LidSystem, pearls
from repro.errors import StructuralError
from repro.lid.relay import HalfRelayStation, RelayStation
from repro.lid.variant import DEFAULT_VARIANT, ProtocolVariant


def chain_system(relays, stop_script=None, stream=None,
                 variant=DEFAULT_VARIANT):
    """src -> A -> [relay chain] -> B -> sink."""
    system = LidSystem("chain", variant=variant)
    src = system.add_source("src", stream=stream)
    a = system.add_shell("A", pearls.Identity())
    b = system.add_shell("B", pearls.Identity())
    sink = system.add_sink("out", stop_script=stop_script)
    system.connect(src, a)
    system.connect(a, b, relays=relays)
    system.connect(b, sink)
    return system, sink


class TestWiring:
    def test_relay_connect_twice_rejected(self):
        system = LidSystem("x")
        rs = RelayStation("rs")
        from repro.lid.channel import Channel

        c1 = Channel.create(system.sim, "c1")
        c2 = Channel.create(system.sim, "c2")
        rs.connect(c1, c2)
        with pytest.raises(StructuralError):
            rs.connect(c1, c2)

    def test_check_wiring_unconnected(self):
        rs = RelayStation("rs")
        with pytest.raises(StructuralError):
            rs.check_wiring()

    def test_unknown_spec_rejected(self):
        system = LidSystem("x")
        src = system.add_source("src")
        sink = system.add_sink("out")
        with pytest.raises(StructuralError):
            system.connect(src, sink, relays=["bogus"])

    def test_register_counts(self):
        assert RelayStation("f").registers == 2
        assert HalfRelayStation("h").registers == 1


class TestPipelining:
    @pytest.mark.parametrize("depth", [1, 2, 3, 5])
    def test_latency_matches_relay_count(self, depth):
        system, sink = chain_system(relays=depth)
        system.run(depth + 3)
        # The first valid token (B's initial output) arrives at cycle 0;
        # the relay chain initially holds voids, so the next token
        # arrives after the chain drains: `depth` void cycles.
        assert sink.void_cycles == list(range(1, depth + 1))

    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_full_throughput_steady_state(self, depth):
        system, sink = chain_system(relays=depth)
        cycles = 30
        system.run(cycles)
        assert sink.steady_throughput(depth + 2, cycles) == 1.0

    @pytest.mark.parametrize("spec", ["half", ["half", "full"]])
    def test_half_relay_full_throughput(self, spec):
        relays = [spec] if isinstance(spec, str) else spec
        system, sink = chain_system(relays=relays)
        cycles = 30
        system.run(cycles)
        assert sink.steady_throughput(len(relays) + 2, cycles) == 1.0

    def test_half_registered_halves_throughput(self):
        system, sink = chain_system(relays=["half-registered"])
        cycles = 41
        system.run(cycles)
        # Conservative registered stop: one token every two cycles.
        assert abs(sink.steady_throughput(5, cycles) - 0.5) < 0.06


class TestBackPressure:
    def test_token_stream_preserved_under_stop(self):
        system, sink = chain_system(
            relays=2, stop_script=lambda c: c % 3 != 0)
        system.run(60)
        ref = system.reference_outputs(60)["out"]
        assert sink.payloads == ref[: len(sink.payloads)]

    def test_no_duplicates_no_reorder(self):
        system, sink = chain_system(
            relays=3, stop_script=lambda c: (c // 3) % 2 == 0)
        system.run(80)
        # The first two tokens are the shells' initial zeros; the source
        # stream that follows must be strictly increasing.
        values = sink.payloads
        assert values[:2] == [0, 0]
        assert values[2:] == sorted(set(values[2:]))

    def test_full_relay_absorbs_inflight_token(self):
        # Stop rises for exactly one cycle; with a full relay station
        # between shells nothing is lost even though the upstream only
        # learns about the stop one cycle later.
        system, sink = chain_system(relays=1,
                                    stop_script=lambda c: c == 5)
        system.run(25)
        ref = system.reference_outputs(25)["out"]
        assert sink.payloads == ref[: len(sink.payloads)]
        assert len(sink.payloads) >= 20

    def test_occupancy_metrics(self):
        system = LidSystem("occ")
        src = system.add_source("src")
        a = system.add_shell("A", pearls.Identity())
        sink = system.add_sink("out", stop_script=lambda c: True)
        system.connect(src, a)
        chain = system.connect(a, sink, relays=1)
        system.run(6)
        (relay,) = system.relays.values()
        # Permanently stopped sink: the station fills both slots.
        assert relay.occupancy == 2

    def test_relay_throughput_counts_departures(self):
        system, sink = chain_system(relays=1)
        system.run(20)
        (relay,) = system.relays.values()
        # One departure per cycle except the initial void.
        assert relay.throughput(20) == pytest.approx(19 / 20)


class TestVoidHandling:
    def test_voids_not_stored(self):
        system, sink = chain_system(relays=2, stream=[1, None, 2, None, 3])
        system.run(20)
        # Two initial shell tokens (B's and A's), then the projection of
        # the scripted stream with its voids squeezed out.
        assert sink.payloads == [0, 0, 1, 2, 3]

    def test_reset_state_is_void(self):
        rs = RelayStation("r")
        half = HalfRelayStation("h")
        rs.reset()
        half.reset()
        assert rs.occupancy == 0
        assert half.occupancy == 0


class TestSameCycleStop:
    """Regression: a half station's acceptance decision must read the
    *settled* stop on its own input — including the stop it itself
    propagated combinationally during the same cycle's settle phase.

    An earlier revision read the raw wire value instead of the
    :meth:`~repro.lid.channel.Channel.stop_asserted` accessor; the two
    agree only because ticks run after the settle fixpoint.  This pins
    the contract for both protocol variants (see the comment in
    ``HalfRelayStation.tick``).
    """

    def test_half_relay_same_cycle_stop_no_loss(self):
        # Stop rises for one cycle; the half station is transparent, so
        # the upstream shell sees the same stop in the same cycle and
        # holds.  Nothing may be lost or duplicated.
        system, sink = chain_system(
            relays=["half"], stop_script=lambda c: c == 7,
            variant=ProtocolVariant.CASU)
        system.run(30)
        ref = system.reference_outputs(30)["out"]
        assert sink.payloads == ref[: len(sink.payloads)]
        assert len(sink.payloads) >= 25

    def test_half_relay_sustained_stop_no_loss(self):
        system, sink = chain_system(
            relays=["half"], stop_script=lambda c: 5 <= c < 11,
            variant=ProtocolVariant.CASU)
        system.run(40)
        ref = system.reference_outputs(40)["out"]
        assert sink.payloads == ref[: len(sink.payloads)]

    def test_carloni_half_relay_wedges_on_void(self):
        # Same settled-stop read, opposite outcome under the original
        # protocol: a Carloni half station back-propagates stop even
        # onto a void slot, so the initial bubble freezes in place and
        # the station can never be primed — the paper's argument for
        # why single-register stations require the Casu discipline.
        system, sink = chain_system(
            relays=["half"], variant=ProtocolVariant.CARLONI)
        system.run(30)
        assert len(sink.payloads) <= 1
        (relay,) = system.relays.values()
        assert relay.occupancy == 0

    def test_half_relay_holds_token_during_stop(self):
        # While stopped, the single register must hold its token (the
        # combinational stop reaches the upstream the same cycle, so
        # the held slot is never overwritten).
        system, sink = chain_system(
            relays=["half"], stop_script=lambda c: c == 7)
        system.run(12)
        (relay,) = system.relays.values()
        assert isinstance(relay, HalfRelayStation)
        # The station never needed a skid slot.
        assert relay.occupancy <= 1

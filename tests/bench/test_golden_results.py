"""Golden regression over checked-in benchmark artifacts.

Two artifacts under ``benchmarks/results/`` carry headline numbers of
the reproduction, and this module re-derives them through the unified
backend API (``repro.skeleton.backend.select``) so a semantic change in
either engine shows up as a mismatch against the checked-in files:

* ``EXP-T6-half-relay-ablation.txt`` is cycle-deterministic — the
  token counts must match exactly;
* ``EXP-D2-skeleton-cost.txt`` carries wall-clock timings — the shape
  and the qualitative claim (skeleton cheaper than full simulation on
  every size) are checked, and the claim is re-established by a fresh
  measurement.
"""

import dataclasses
import os
import re

import pytest

from repro.bench import workloads
from repro.graph import pipeline
from repro.ir import lower
from repro.lid.variant import DEFAULT_VARIANT, ProtocolVariant
from repro.skeleton import SkeletonSim, check_deadlock, select

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                           "benchmarks", "results")


def _read(name):
    with open(os.path.join(RESULTS_DIR, name), encoding="utf-8") as fh:
        return fh.read()


def _half_relay_pipeline(stages):
    graph = pipeline(stages)
    for edge in graph.edges:
        if edge.relays:
            edge.relays = ("half",) * len(edge.relays)
    return graph


class TestHalfRelayAblationGolden:
    """EXP-T6: deterministic token counts, re-derived via select()."""

    @pytest.fixture(scope="class")
    def golden_rows(self):
        text = _read("EXP-T6-half-relay-ablation.txt")
        rows = []
        for line in text.splitlines():
            m = re.match(r"^(\d+)\s+(\d+)\s+(\d+)\s*$", line)
            if m:
                rows.append(tuple(int(g) for g in m.groups()))
        assert rows, "no data rows found in the golden file"
        return rows

    def test_covers_expected_stage_counts(self, golden_rows):
        assert [stages for stages, _o, _n in golden_rows] == [2, 3, 4]

    def test_token_counts_rederive_exactly(self, golden_rows):
        bp = [{"out": (False, False, True, True)}]
        for stages, old_tokens, new_tokens in golden_rows:
            graph = _half_relay_pipeline(stages)
            measured = {}
            for variant, expected in (
                    (ProtocolVariant.CARLONI, old_tokens),
                    (ProtocolVariant.CASU, new_tokens)):
                handle = select(graph, variant, sink_patterns=bp,
                                detect_ambiguity=False)
                handle.run_cycles(200)
                measured[variant] = int(handle.accept_counts()[0][0])
                assert measured[variant] == expected, (stages, variant)
            # The headline claim the table exists for.
            assert measured[ProtocolVariant.CASU] > \
                10 * measured[ProtocolVariant.CARLONI]


class TestSkeletonCostGolden:
    """EXP-D2: timing table shape + the 'negligible cost' claim."""

    @pytest.fixture(scope="class")
    def golden_rows(self):
        text = _read("EXP-D2-skeleton-cost.txt")
        rows = []
        for line in text.splitlines():
            m = re.match(
                r"^(\S+)\s+(\d+)\s+[\d.]+ ms\s+[\d.]+ ms\s+([\d.]+)x",
                line)
            if m:
                rows.append((m.group(1), int(m.group(2)),
                             float(m.group(3))))
        assert rows, "no data rows found in the golden file"
        return rows

    def test_covers_expected_systems(self, golden_rows):
        assert [(name, cycles) for name, cycles, _s in golden_rows] \
            == [("pipeline4", 800), ("pipeline16", 800),
                ("pipeline64", 800)]

    def test_checked_in_speedups_all_positive(self, golden_rows):
        for name, _cycles, speedup in golden_rows:
            assert speedup > 1.0, name

    def test_skeleton_beats_full_sim_via_backend_api(self, golden_rows):
        """Re-establish the claim with a fresh (shorter) measurement."""
        import time

        for name, _cycles, _speedup in golden_rows:
            stages = int(name.removeprefix("pipeline"))
            cycles = 200
            graph = pipeline(stages, relays_per_hop=2)

            start = time.perf_counter()
            handle = select(graph, DEFAULT_VARIANT, batch=1,
                            detect_ambiguity=False)
            handle.run_cycles(cycles)
            skeleton_s = time.perf_counter() - start

            graph = pipeline(stages, relays_per_hop=2)
            system = graph.elaborate()
            system.finalize(strict=False)
            system.sim.reset()
            start = time.perf_counter()
            system.sim.step(cycles)
            full_s = time.perf_counter() - start

            assert skeleton_s < full_s, (
                f"{name}: skeleton {skeleton_s * 1e3:.1f} ms not under "
                f"full sim {full_s * 1e3:.1f} ms")


def _all_workload_graphs():
    """(label, graph) for every topology the experiment benches use."""
    cases = [("figure1", workloads.figure1_workload()),
             ("figure2", workloads.figure2_workload())]
    cases += [(f"ring_s{s}_r{r}", g)
              for s, r, g in workloads.ring_sweep()]
    cases += [(f"reconv_{i}", g)
              for i, (_a, _b, g) in
              enumerate(workloads.reconvergent_sweep())]
    cases += [(g.name, g) for _d, _r, g in workloads.tree_sweep()]
    cases += [(f"composed_{i}", g)
              for i, (_label, g) in
              enumerate(workloads.composition_cases())]
    cases += [(f"deadlock_{i}_{g.name}", g)
              for i, (_cls, _exp, g) in
              enumerate(workloads.deadlock_suite())]
    cases += [(g.name, g)
              for g in workloads.pipeline_scaling(sizes=(4, 16))]
    return cases


class TestLoweringParity:
    """The IR path is bit-invisible on every bench workload.

    Simulating from an explicit :class:`repro.ir.LoweredSystem` must
    produce byte-identical results, verdicts and metrics snapshots to
    simulating from the source graph — on both engines — for every
    topology family the experiment benches quantify over (including
    the deadlock suite and the composed systems).
    """

    @pytest.mark.parametrize(
        "label,graph", _all_workload_graphs(),
        ids=[label for label, _g in _all_workload_graphs()])
    def test_scalar_results_bit_identical(self, label, graph):
        via_graph = SkeletonSim(graph, detect_ambiguity=True)
        via_ir = SkeletonSim(lower(graph), detect_ambiguity=True)
        a = via_graph.run(max_cycles=5_000)
        b = via_ir.run(max_cycles=5_000)
        assert dataclasses.asdict(a) == dataclasses.asdict(b)
        assert via_graph.metrics_snapshot() == via_ir.metrics_snapshot()

    @pytest.mark.parametrize(
        "label,graph", _all_workload_graphs(),
        ids=[label for label, _g in _all_workload_graphs()])
    def test_vectorized_results_bit_identical(self, label, graph):
        bp = [None, {name: (False, True)
                     for name in lower(graph).sink_names}]
        via_graph = select(graph, DEFAULT_VARIANT, sink_patterns=bp,
                           backend="vectorized")
        via_ir = select(lower(graph), DEFAULT_VARIANT,
                        sink_patterns=bp, backend="vectorized")
        results_a = via_graph.run(max_cycles=5_000)
        results_b = via_ir.run(max_cycles=5_000)
        for a, b in zip(results_a, results_b):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)
        assert via_graph.metrics_snapshots() == \
            via_ir.metrics_snapshots()

    @pytest.mark.parametrize(
        "label,graph",
        [(f"{cls}/{g.name}", g)
         for cls, _exp, g in workloads.deadlock_suite()],
        ids=[f"{i}_{g.name}" for i, (_c, _e, g) in
             enumerate(workloads.deadlock_suite())])
    def test_deadlock_verdicts_identical(self, label, graph):
        a = check_deadlock(graph)
        b = check_deadlock(lower(graph))
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

"""Nondeterministic environment automata for block verification.

The paper verifies each block *"provided the [block] works in an
appropriate environment"*: upstreams keep their values on asserted
stops and send ordered valid data; downstreams may stop arbitrarily.
These classes model exactly those assumptions, with every remaining
choice left nondeterministic so the BFS explores all of them.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

#: Modulus for abstract payloads (data independence; must exceed the
#: largest number of in-flight tokens any single block can hold + 2).
PAYLOAD_MODULUS = 8


@dataclasses.dataclass(frozen=True)
class UpstreamState:
    """A law-abiding producer: ordered tokens, holds on stop.

    ``k`` is the sequence number of the token currently on offer;
    ``committed`` is true when the previous cycle presented ``k`` and
    was stopped — the environment assumption then *requires* the same
    token to stay on the wires.
    """

    k: int = 0
    committed: bool = False

    def choices(self) -> List[Optional[int]]:
        """Tokens the upstream may legally present this cycle."""
        if self.committed:
            return [self.k]
        return [None, self.k]

    def after(self, presented: Optional[int], stop_out: bool) -> "UpstreamState":
        """Advance given what was presented and the settled stop."""
        if presented is None:
            return UpstreamState(k=self.k, committed=False)
        if stop_out:
            return UpstreamState(k=self.k, committed=True)
        return UpstreamState(k=(self.k + 1) % PAYLOAD_MODULUS,
                             committed=False)


@dataclasses.dataclass(frozen=True)
class DownstreamState:
    """An arbitrary consumer: stops whenever it pleases (stateless)."""

    @staticmethod
    def choices() -> Tuple[bool, bool]:
        return (False, True)


@dataclasses.dataclass(frozen=True)
class CooperativeDownstream:
    """A consumer that never stops — used for progress/liveness checks."""

    @staticmethod
    def choices() -> Tuple[bool]:
        return (False,)


@dataclasses.dataclass(frozen=True)
class EagerUpstream:
    """A producer that always has data — used for progress checks."""

    k: int = 0
    committed: bool = False

    def choices(self) -> List[Optional[int]]:
        return [self.k]

    def after(self, presented: Optional[int], stop_out: bool) -> "EagerUpstream":
        if presented is not None and not stop_out:
            return EagerUpstream(k=(self.k + 1) % PAYLOAD_MODULUS)
        return EagerUpstream(k=self.k, committed=presented is not None)

"""Skeleton simulation: valid/stop dynamics without data.

Paper: *"we are allowed to simulate just the skeleton of the system
consisting of stop and valid signals, thus the simulation cost is
absolutely negligible"*.  The skeleton simulator runs the exact control
semantics of the LID blocks (DESIGN.md §4) on bare bits — no payloads,
no pearls — directly from a :class:`~repro.graph.model.SystemGraph`.

It is the workhorse behind:

* throughput measurement (fires per period, exact rationals);
* transient/period extraction (state-hash periodicity detection);
* deadlock checking (a period with zero firings), including the
  *potential* deadlock of half-relay-stations-in-loops, detected as an
  ambiguous stop network: the monotone stop equations admitting more
  than one fixpoint in a reachable state (least = optimistic hardware,
  greatest = latch-up; real gates could settle on either).

Source availability and sink back pressure are modelled as repeating
bit patterns so that the composite state is finite and periodicity is
guaranteed.
"""

from __future__ import annotations

import dataclasses
import math
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.model import SystemGraph
from ..ir import (
    RS_BRIDGE,
    RS_FULL,
    RS_HALF,
    RS_HALF_REG,
    SHELL,
    SINK,
    SRC,
    LoweredSystem,
    lower,
)
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant

# Element kind tags (kept as small ints for compact state tuples).
# Canonically defined by repro.ir; the historical underscore aliases
# stay because the vectorized engine and older call sites import them.
_SRC, _SHELL, _SINK, _RS_FULL, _RS_HALF, _RS_HALF_REG, _RS_BRIDGE = (
    SRC, SHELL, SINK, RS_FULL, RS_HALF, RS_HALF_REG, RS_BRIDGE)


@dataclasses.dataclass
class SkeletonResult:
    """Outcome of a skeleton run (see :class:`SkeletonSim.run`)."""

    transient: int
    period: int
    shell_fires: Dict[str, int]
    sink_accepts: Dict[str, int]
    cycles_run: int
    deadlocked: bool
    potential_deadlock_cycle: Optional[int]

    @property
    def potential(self) -> bool:
        return self.potential_deadlock_cycle is not None

    def throughput(self, name: str) -> Fraction:
        """Steady-state firings (or acceptances) per cycle for a block."""
        if self.period == 0:
            return Fraction(0)
        if name in self.shell_fires:
            return Fraction(self.shell_fires[name], self.period)
        if name in self.sink_accepts:
            return Fraction(self.sink_accepts[name], self.period)
        raise KeyError(f"no shell or sink named {name!r}")

    def min_shell_throughput(self) -> Fraction:
        if not self.shell_fires or self.period == 0:
            return Fraction(0)
        return min(
            Fraction(f, self.period) for f in self.shell_fires.values()
        )


class SkeletonSim:
    """Bit-level simulator of a system graph's valid/stop skeleton."""

    def __init__(
        self,
        graph: "SystemGraph | LoweredSystem",
        variant: ProtocolVariant = DEFAULT_VARIANT,
        fixpoint: str = "least",
        source_patterns: Optional[Dict[str, Sequence[bool]]] = None,
        sink_patterns: Optional[Dict[str, Sequence[bool]]] = None,
        detect_ambiguity: bool = True,
        telemetry=None,
    ):
        if fixpoint not in ("least", "greatest"):
            raise ValueError("fixpoint must be 'least' or 'greatest'")
        # One canonical construction path: lower the graph (memoized
        # per graph object) and simulate its skeleton view — queued
        # shells are modelled via their relay-station desugaring (see
        # repro.graph.transform.desugar_queues).  A pre-lowered
        # LoweredSystem is accepted directly (campaigns share one).
        lowered = graph if isinstance(graph, LoweredSystem) else lower(graph)
        self.lowered = lowered.skeleton_view()
        self.graph = self.lowered.graph
        self.variant = variant
        # The variant is immutable for the lifetime of the simulator;
        # pre-binding the flag keeps the per-shell, per-settle-pass
        # attribute chase out of the hot loops.
        self._is_casu = variant.discards_void_stops
        self.fixpoint = fixpoint
        self.detect_ambiguity = detect_ambiguity
        # Telemetry is opt-in; the flags below keep the per-cycle cost
        # of the disabled path to a single branch.
        self.telemetry = telemetry
        self._metrics_on = (telemetry is not None
                            and telemetry.metrics is not None)
        self._events_on = (telemetry is not None
                           and telemetry.events is not None)
        self._build(source_patterns or {}, sink_patterns or {})
        self.reset()

    # -- construction -------------------------------------------------------

    def _build(self, source_patterns, sink_patterns) -> None:
        # All wiring tables come from the canonical lowering; this
        # method only binds the environment scripts and derives the
        # flat dispatch tables for the hot loops.
        low = self.lowered
        self.shell_names = list(low.shell_names)
        self.source_names = list(low.source_names)
        self.sink_names = list(low.sink_names)

        self.src_pattern: List[Tuple[bool, ...]] = [
            tuple(bool(b) for b in source_patterns.get(n, (True,)))
            for n in self.source_names
        ]
        self.sink_pattern: List[Tuple[bool, ...]] = [
            tuple(bool(b) for b in sink_patterns.get(n, (False,)))
            for n in self.sink_names
        ]
        lengths = [len(p) for p in self.sink_pattern] or [1]
        self.sink_phase_mod = math.lcm(*lengths)

        # -- GALS clock-domain tables --------------------------------
        # ``_gals`` keeps every hot loop on the exact pre-refactor path
        # for single-clock systems; the tables below are only consulted
        # (and only built) for genuinely multi-rate lowerings.
        self._gals = not low.single_clock
        self.hyperperiod = low.hyperperiod
        self.bridge_names: List[str] = list(low.bridge_names)
        self.bridge_depths: List[int] = [b.depth for b in low.bridges]
        self.bridge_in_hop: List[int] = list(low.bridge_in_hop)
        self.bridge_out_hop: List[int] = list(low.bridge_out_hop)
        if self._gals:
            schedules = [d.schedule for d in low.domains]
            node_dom = low.node_domain
            self._shell_sched = [
                schedules[node_dom[i]] for i in low.shell_ids]
            self._src_sched = [
                schedules[node_dom[i]] for i in low.source_ids]
            self._sink_sched = [
                schedules[node_dom[i]] for i in low.sink_ids]
            # Relay stations on a bridged edge sit on the producer side
            # of the crossing: they are clocked by the edge's source
            # domain.  Bridges write in the source domain and read in
            # the destination domain.
            edge_src_dom = [node_dom[e.src] for e in low.edges]
            self._rs_sched = [
                schedules[edge_src_dom[r.edge]] for r in low.relays]
            self._bridge_wsched = [
                schedules[b.src_domain] for b in low.bridges]
            self._bridge_rsched = [
                schedules[b.dst_domain] for b in low.bridges]
        else:
            self._shell_sched = self._src_sched = self._sink_sched = []
            self._rs_sched = []
            self._bridge_wsched = self._bridge_rsched = []
        # Period of the environment/schedule phase folded into state().
        self._phase_mod = math.lcm(self.sink_phase_mod, self.hyperperiod)

        self.rs_kinds: List[int] = [r.tag for r in low.relays]
        self.rs_names: List[str] = list(low.relay_names)
        self.hops = list(low.hops)
        # One stable name per hop (wire segment), e.g. "A->B[0]"; used
        # as the channel key in telemetry metric paths and trace events.
        self.hop_names: List[str] = list(low.hop_names)
        self.shell_in_hops: List[List[int]] = [
            list(x) for x in low.shell_in_hops]
        self.shell_out_hops: List[List[int]] = [
            list(x) for x in low.shell_out_hops]
        self.src_out_hops: List[List[int]] = [
            list(x) for x in low.source_out_hops]
        self.sink_in_hop: List[Optional[int]] = list(low.sink_in_hop)
        self.rs_in_hop: List[int] = list(low.relay_in_hop)
        self.rs_out_hop: List[int] = list(low.relay_out_hop)
        # Shell out registers: one bit per edge; register id -> shell id.
        self.shell_reg_owner: List[int] = [
            shell for shell, _edge in low.shell_regs]

        # The stop network can only have multiple fixpoints when a
        # combinational cycle exists, which requires a transparent half
        # relay station or a direct shell-to-shell hop somewhere.
        self._may_be_ambiguous = low.may_be_ambiguous

        # Flat dispatch tables for the hot per-cycle loops.
        self._src_hops: List[Tuple[int, int]] = []
        self._shellreg_hops: List[Tuple[int, int]] = []
        self._rs_hops: List[Tuple[int, int]] = []
        self._bridge_hops: List[Tuple[int, int]] = []
        for hop_id, hop in enumerate(self.hops):
            if hop.producer_kind == _SRC:
                self._src_hops.append((hop_id, hop.producer_id))
            elif hop.producer_kind == _SHELL:
                self._shellreg_hops.append((hop_id, hop.producer_reg))
            elif hop.producer_kind == _RS_BRIDGE:
                self._bridge_hops.append((hop_id, hop.producer_id))
            else:
                self._rs_hops.append((hop_id, hop.producer_id))
        self._transparent_half_ids = [
            rs_id for rs_id, kind in enumerate(self.rs_kinds)
            if kind == _RS_HALF
        ]
        # Everything below is invariant after construction; resolving
        # it once keeps the per-cycle loops free of repeated kind
        # dispatch and attribute chases (these loops dominate the
        # skeleton profile on long runs).
        self._full_fixed_hops = [
            (rs_id, self.rs_in_hop[rs_id])
            for rs_id, kind in enumerate(self.rs_kinds)
            if kind == _RS_FULL
        ]
        self._halfreg_fixed_hops = [
            (rs_id, self.rs_in_hop[rs_id])
            for rs_id, kind in enumerate(self.rs_kinds)
            if kind == _RS_HALF_REG
        ]
        self._sink_fixed_hops = [
            (sink_id, hop_in)
            for sink_id, hop_in in enumerate(self.sink_in_hop)
            if hop_in is not None
        ]
        self._bridge_fixed_hops = [
            (b_id, hop_in)
            for b_id, hop_in in enumerate(self.bridge_in_hop)
        ]
        self._half_inout = [
            (rs_id, self.rs_in_hop[rs_id], self.rs_out_hop[rs_id])
            for rs_id in self._transparent_half_ids
        ]
        self._rs_inout = [
            (rs_id, kind, self.rs_in_hop[rs_id], self.rs_out_hop[rs_id])
            for rs_id, kind in enumerate(self.rs_kinds)
        ]
        self._shell_out_pairs = [
            [(hop_out, self.hops[hop_out].producer_reg)
             for hop_out in outs]
            for outs in self.shell_out_hops
        ]
        self._hop_internal = [
            h.consumer_kind in (_SHELL, _RS_HALF) for h in self.hops
        ]

    # -- state ---------------------------------------------------------------

    def reset(self) -> None:
        self.cycle = 0
        self._src_override: Optional[Sequence[bool]] = None
        self._sink_override: Optional[Sequence[bool]] = None
        # Shell out registers start VALID (paper footnote 1).
        self.shell_reg = [True] * len(self.shell_reg_owner)
        # Relay stations start VOID.
        self.rs_main = [False] * len(self.rs_kinds)
        self.rs_aux = [False] * len(self.rs_kinds)
        self.rs_stop_reg = [False] * len(self.rs_kinds)
        # Bisynchronous-FIFO bridges start empty.
        self.bridge_occ = [0] * len(self.bridge_depths)
        # Scheduled occupancy perturbations (see poke_bridge).
        self._bridge_pokes: List[Tuple[int, int, int, int]] = []
        self.src_phase = [0] * len(self.source_names)
        self.fire_history: List[Tuple[bool, ...]] = []
        self.accept_history: List[Tuple[bool, ...]] = []
        self.ambiguous_cycles: List[int] = []
        # Paper claim instrumentation ("higher locality of management
        # of void/stop signals"): how many stop wires are asserted, how
        # many land on void tokens, and how many of those void-landing
        # stops were generated *combinationally by the protocol* (by a
        # shell or a transparent half station).  Scripted sink stops
        # and registered full-station credits are validity-blind by
        # nature and excluded from the internal count.
        self.stop_assertions_total = 0
        self.stops_on_voids_total = 0
        self.internal_stops_on_voids_total = 0
        # Telemetry accumulators (only filled when metrics are on):
        # per-hop stall cycles and per-relay end-of-cycle occupancy
        # distribution ({0,1,2} -> cycles).  See metrics_snapshot().
        self.hop_stall_cycles = [0] * len(self.hops)
        self.rs_occupancy_counts = [[0, 0, 0] for _ in self.rs_kinds]
        self.bridge_occupancy_counts = [
            [0] * (depth + 1) for depth in self.bridge_depths]

    def state(self) -> Tuple:
        """Hashable snapshot of all registers and script phases.

        The phase term folds the sink-script period together with the
        clock-domain hyperperiod so periodicity detection sees the full
        environment/schedule state (both are 1 for unscripted
        single-clock systems).
        """
        return (
            tuple(self.shell_reg),
            tuple(self.rs_main),
            tuple(self.rs_aux),
            tuple(self.rs_stop_reg),
            tuple(self.bridge_occ),
            tuple(self.src_phase),
            self.cycle % self._phase_mod,
        )

    def register_state(self) -> Tuple:
        """Snapshot of the protocol registers only (no script phases).

        Used by the exhaustive system-liveness explorer, which supplies
        the environment externally per transition.
        """
        return (
            tuple(self.shell_reg),
            tuple(self.rs_main),
            tuple(self.rs_aux),
            tuple(self.rs_stop_reg),
            tuple(self.bridge_occ),
        )

    def set_register_state(self, state: Tuple) -> None:
        """Restore a snapshot produced by :meth:`register_state`."""
        shell_reg, rs_main, rs_aux, rs_stop, bridge_occ = state
        self.shell_reg = list(shell_reg)
        self.rs_main = list(rs_main)
        self.rs_aux = list(rs_aux)
        self.rs_stop_reg = list(rs_stop)
        self.bridge_occ = list(bridge_occ)

    def poke_bridge(self, bridge, cycle: int, delta: int,
                    duration: int = 1) -> None:
        """Schedule a bridge occupancy perturbation (fault injection).

        On each cycle in ``[cycle, cycle + duration)`` the bridge's
        occupancy is nudged by *delta* after the normal update, clamped
        to ``[0, depth]`` — the over-/underflow fault models of the
        clock-domain-crossing campaigns.  *bridge* is a bridge name
        (see ``bridge_names``) or table index.
        """
        if isinstance(bridge, str):
            try:
                b_id = self.bridge_names.index(bridge)
            except ValueError:
                raise KeyError(
                    f"no bridge named {bridge!r} "
                    f"(bridges: {self.bridge_names})") from None
        else:
            b_id = bridge
            if not 0 <= b_id < len(self.bridge_depths):
                raise KeyError(f"no bridge with index {b_id}")
        self._bridge_pokes.append(
            (b_id, cycle, cycle + duration, delta))

    # -- per-cycle evaluation ----------------------------------------------

    def _forward_valids(self) -> List[bool]:
        valid = [False] * len(self.hops)
        if self._src_override is not None:
            for hop_id, src_id in self._src_hops:
                valid[hop_id] = self._src_override[src_id]
        else:
            for hop_id, src_id in self._src_hops:
                pattern = self.src_pattern[src_id]
                valid[hop_id] = pattern[self.src_phase[src_id]
                                        % len(pattern)]
        if self._gals:
            # A source in a domain that does not tick this base cycle
            # presents void (its phase is frozen in step()).
            phase = self.cycle % self.hyperperiod
            for hop_id, src_id in self._src_hops:
                if not self._src_sched[src_id][phase]:
                    valid[hop_id] = False
        shell_reg = self.shell_reg
        for hop_id, reg in self._shellreg_hops:
            valid[hop_id] = shell_reg[reg]
        rs_main = self.rs_main
        for hop_id, rs_id in self._rs_hops:
            valid[hop_id] = rs_main[rs_id]
        # A bridge presents its head-of-FIFO: valid iff non-empty.
        bridge_occ = self.bridge_occ
        for hop_id, b_id in self._bridge_hops:
            valid[hop_id] = bridge_occ[b_id] > 0
        return valid

    def _settle_stops(self, valid: List[bool], mode: str) -> List[bool]:
        """Fixpoint of the monotone stop equations (least or greatest)."""
        pessimistic = mode == "greatest"
        n_hops = len(self.hops)
        stop = [pessimistic] * n_hops
        # Registered / scripted stops are fixed regardless of mode.
        fixed = [False] * n_hops
        rs_stop_reg = self.rs_stop_reg
        rs_main = self.rs_main
        for rs_id, hop_in in self._full_fixed_hops:
            stop[hop_in] = rs_stop_reg[rs_id]
            fixed[hop_in] = True
        for rs_id, hop_in in self._halfreg_fixed_hops:
            stop[hop_in] = rs_main[rs_id]
            fixed[hop_in] = True
        sink_override = self._sink_override
        if sink_override is not None:
            for sink_id, hop_in in self._sink_fixed_hops:
                stop[hop_in] = sink_override[sink_id]
                fixed[hop_in] = True
        else:
            cycle = self.cycle
            sink_pattern = self.sink_pattern
            for sink_id, hop_in in self._sink_fixed_hops:
                pattern = sink_pattern[sink_id]
                stop[hop_in] = pattern[cycle % len(pattern)]
                fixed[hop_in] = True
        if self._gals:
            # A sink whose domain does not tick this base cycle cannot
            # accept: it asserts stop unconditionally.  The bridge
            # write port asserts stop while the FIFO is full —
            # registered (state-derived), hence fixed during settle.
            phase = self.cycle % self.hyperperiod
            for sink_id, hop_in in self._sink_fixed_hops:
                if not self._sink_sched[sink_id][phase]:
                    stop[hop_in] = True
                    fixed[hop_in] = True
            bridge_occ = self.bridge_occ
            bridge_depths = self.bridge_depths
            for b_id, hop_in in self._bridge_fixed_hops:
                stop[hop_in] = bridge_occ[b_id] >= bridge_depths[b_id]
                fixed[hop_in] = True

        changed = True
        guard = n_hops + len(self.shell_names) + 2
        is_casu = self._is_casu
        half_inout = self._half_inout
        shell_in_hops = self.shell_in_hops
        shell_fire = self._shell_fire
        n_shells = len(self.shell_names)
        while changed and guard > 0:
            changed = False
            guard -= 1
            # Transparent half relay stations.
            for rs_id, hop_in, hop_out in half_inout:
                if is_casu:
                    value = stop[hop_out] and rs_main[rs_id]
                else:
                    value = stop[hop_out]
                if stop[hop_in] != value and not fixed[hop_in]:
                    stop[hop_in] = value
                    changed = True
            # Shells: stall propagates from outputs to all inputs.
            for shell_id in range(n_shells):
                stalled = not shell_fire(shell_id, valid, stop)
                for hop_in in shell_in_hops[shell_id]:
                    value = stalled and (valid[hop_in] or not is_casu)
                    if stop[hop_in] != value and not fixed[hop_in]:
                        stop[hop_in] = value
                        changed = True
        return stop

    def _shell_fire(self, shell_id: int, valid, stop) -> bool:
        if self._gals and not self._shell_sched[shell_id][
                self.cycle % self.hyperperiod]:
            return False
        for hop_in in self.shell_in_hops[shell_id]:
            if not valid[hop_in]:
                return False
        is_casu = self._is_casu
        shell_reg = self.shell_reg
        for hop_out, reg in self._shell_out_pairs[shell_id]:
            if stop[hop_out] and (shell_reg[reg] or not is_casu):
                return False
        return True

    def _apply_edge(self, valid: List[bool], stop: List[bool],
                    fires: Tuple[bool, ...]) -> None:
        """Register updates (mirror repro.lid semantics exactly).

        In GALS mode an element whose clock domain does not tick this
        base cycle holds all of its registers; bridge occupancies move
        by (write in the source domain) minus (read in the destination
        domain), each gated on its own port's schedule.
        """
        gals = self._gals
        phase = self.cycle % self.hyperperiod if gals else 0
        shell_reg = self.shell_reg
        new_shell_reg = list(shell_reg)
        shell_out_pairs = self._shell_out_pairs
        for shell_id, fired in enumerate(fires):
            if gals and not self._shell_sched[shell_id][phase]:
                continue
            for hop_out, reg in shell_out_pairs[shell_id]:
                if fired:
                    new_shell_reg[reg] = True
                else:
                    new_shell_reg[reg] = shell_reg[reg] and stop[hop_out]

        rs_main = self.rs_main
        rs_aux = self.rs_aux
        rs_stop_reg = self.rs_stop_reg
        new_main = list(rs_main)
        new_aux = list(rs_aux)
        new_stop_reg = list(rs_stop_reg)
        slot_consumed = self.variant.slot_consumed
        for rs_id, kind, hop_in, hop_out in self._rs_inout:
            if gals and not self._rs_sched[rs_id][phase]:
                continue
            stop_in = stop[hop_out]
            incoming = valid[hop_in]
            if kind == _RS_FULL:
                accepted = incoming and not rs_stop_reg[rs_id]
                consumed = slot_consumed(rs_main[rs_id], stop_in)
                if rs_aux[rs_id]:
                    if consumed:
                        new_main[rs_id] = rs_aux[rs_id]
                        new_aux[rs_id] = False
                        new_stop_reg[rs_id] = False
                elif consumed:
                    new_main[rs_id] = accepted
                    new_stop_reg[rs_id] = False
                elif accepted:
                    new_aux[rs_id] = True
                    new_stop_reg[rs_id] = True
            else:  # half variants share the single-register update
                consumed = slot_consumed(rs_main[rs_id], stop_in)
                accepted = incoming and not stop[hop_in]
                if consumed:
                    new_main[rs_id] = accepted
        self.shell_reg = new_shell_reg
        self.rs_main = new_main
        self.rs_aux = new_aux
        self.rs_stop_reg = new_stop_reg

        if gals:
            bridge_occ = self.bridge_occ
            bridge_depths = self.bridge_depths
            for b_id in range(len(bridge_occ)):
                occ = bridge_occ[b_id]
                wrote = (self._bridge_wsched[b_id][phase]
                         and valid[self.bridge_in_hop[b_id]]
                         and occ < bridge_depths[b_id])
                read = (self._bridge_rsched[b_id][phase]
                        and occ > 0
                        and not stop[self.bridge_out_hop[b_id]])
                bridge_occ[b_id] = occ + wrote - read
            if self._bridge_pokes:
                cycle = self.cycle
                for b_id, lo, hi, delta in self._bridge_pokes:
                    if lo <= cycle < hi:
                        nudged = bridge_occ[b_id] + delta
                        depth = bridge_depths[b_id]
                        bridge_occ[b_id] = min(max(nudged, 0), depth)

    def step(self) -> Tuple[Tuple[bool, ...], Tuple[bool, ...]]:
        """Advance one cycle; returns (shell fires, sink accepts)."""
        valid = self._forward_valids()
        stop = self._settle_stops(valid, self.fixpoint)
        if self.detect_ambiguity and self._may_be_ambiguous:
            other = "greatest" if self.fixpoint == "least" else "least"
            alt = self._settle_stops(valid, other)
            if alt != stop:
                self.ambiguous_cycles.append(self.cycle)
                if self._events_on:
                    self.telemetry.events.emit(
                        "fixpoint", "ambiguous", self.cycle)

        collect = self._metrics_on
        hop_stall = self.hop_stall_cycles
        hop_internal = self._hop_internal
        stops = voids = internal = 0
        for hop_id, asserted in enumerate(stop):
            if asserted:
                stops += 1
                if collect:
                    hop_stall[hop_id] += 1
                if not valid[hop_id]:
                    voids += 1
                    if hop_internal[hop_id]:
                        internal += 1
        self.stop_assertions_total += stops
        self.stops_on_voids_total += voids
        self.internal_stops_on_voids_total += internal

        fires = tuple(
            self._shell_fire(i, valid, stop)
            for i in range(len(self.shell_names))
        )
        accepts = tuple(
            hop is not None and valid[hop] and not stop[hop]
            for hop, _pattern in zip(self.sink_in_hop, self.sink_pattern)
        )

        self._apply_edge(valid, stop, fires)

        if collect:
            occupancy = self.rs_occupancy_counts
            rs_main, rs_aux = self.rs_main, self.rs_aux
            for rs_id in range(len(self.rs_kinds)):
                occupancy[rs_id][int(rs_main[rs_id])
                                 + int(rs_aux[rs_id])] += 1
            bridge_counts = self.bridge_occupancy_counts
            for b_id, occ in enumerate(self.bridge_occ):
                bridge_counts[b_id][occ] += 1
        if self._events_on:
            events = self.telemetry.events
            cycle = self.cycle
            for i, fired in enumerate(fires):
                if fired:
                    events.emit("token", "fire", cycle,
                                block=self.shell_names[i])
            for i, accepted in enumerate(accepts):
                if accepted:
                    events.emit("token", "accept", cycle,
                                sink=self.sink_names[i])
            for hop_id, asserted in enumerate(stop):
                if asserted:
                    events.emit("stall", "assert", cycle,
                                channel=self.hop_names[hop_id],
                                valid=valid[hop_id])

        gals = self._gals
        phase = (self.cycle % self.hyperperiod) if gals else 0
        for src_id in range(len(self.source_names)):
            if gals and not self._src_sched[src_id][phase]:
                continue  # domain does not tick: pattern phase frozen
            pattern = self.src_pattern[src_id]
            presented = pattern[self.src_phase[src_id] % len(pattern)]
            held = False
            if presented:
                held = any(
                    stop[h] for h in self.src_out_hops[src_id]
                )
            if not held:
                self.src_phase[src_id] = (
                    (self.src_phase[src_id] + 1) % len(pattern)
                )

        self.fire_history.append(fires)
        self.accept_history.append(accepts)
        self.cycle += 1
        return fires, accepts

    def external_step(
        self,
        src_valid: Sequence[bool],
        sink_stop: Sequence[bool],
    ) -> Tuple[Tuple[bool, ...], Tuple[bool, ...], Tuple[bool, ...]]:
        """One cycle with the environment supplied explicitly.

        *src_valid* gives the validity presented by each source this
        cycle; *sink_stop* the stop each sink asserts.  Script patterns
        and phases are bypassed (and phases left untouched), so the
        caller fully owns the environment — this is the hook the
        exhaustive liveness explorer drives.  Returns
        ``(shell fires, sink accepts, source stops)`` where the last
        tuple tells the caller which presented tokens were held (the
        environment contract: a held token must be re-presented).
        """
        if len(src_valid) != len(self.source_names):
            raise ValueError("need one validity bit per source")
        if len(sink_stop) != len(self.sink_names):
            raise ValueError("need one stop bit per sink")
        self._src_override = list(src_valid)
        self._sink_override = list(sink_stop)
        try:
            valid = self._forward_valids()
            stop = self._settle_stops(valid, self.fixpoint)
            fires = tuple(
                self._shell_fire(i, valid, stop)
                for i in range(len(self.shell_names))
            )
            accepts = tuple(
                hop is not None and valid[hop] and not stop[hop]
                for hop in self.sink_in_hop
            )
            src_stops = tuple(
                any(stop[h] for h in self.src_out_hops[src_id])
                for src_id in range(len(self.source_names))
            )
            self._apply_edge(valid, stop, fires)
        finally:
            self._src_override = None
            self._sink_override = None
        self.cycle += 1
        return fires, accepts, src_stops

    # -- telemetry ------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Dict]:
        """Canonical metrics snapshot of the run so far.

        The same snapshot (bit-identical keys and values) is produced
        by the vectorized engine for each batch column — the contract
        enforced by the differential conformance suite.  Per-hop stall
        cycles and relay occupancy distributions are present only when
        the simulator was constructed with metrics-collecting telemetry
        (they need per-cycle accumulation); everything else comes from
        the always-on counters.
        """
        from ..obs import MetricsRegistry

        registry = MetricsRegistry()
        cycles = self.cycle
        registry.counter("skeleton/cycles").inc(cycles)
        for i, name in enumerate(self.shell_names):
            fires = sum(1 for f in self.fire_history if f[i])
            registry.counter(f"skeleton/shell/{name}/fires").inc(fires)
            registry.gauge(f"skeleton/shell/{name}/fire_rate").set(
                fires / cycles if cycles else 0.0)
        for i, name in enumerate(self.sink_names):
            accepts = sum(1 for a in self.accept_history if a[i])
            registry.counter(f"skeleton/sink/{name}/accepts").inc(accepts)
        registry.counter("skeleton/stop/assertions").inc(
            self.stop_assertions_total)
        registry.counter("skeleton/stop/on_voids").inc(
            self.stops_on_voids_total)
        registry.counter("skeleton/stop/on_voids_internal").inc(
            self.internal_stops_on_voids_total)
        registry.counter("skeleton/fixpoint/ambiguous").inc(
            len(self.ambiguous_cycles))
        if self._metrics_on:
            for hop_id, stalls in enumerate(self.hop_stall_cycles):
                registry.counter(
                    f"skeleton/channel/{self.hop_names[hop_id]}"
                    f"/stall_cycles").inc(stalls)
            for rs_id, counts in enumerate(self.rs_occupancy_counts):
                hist = registry.histogram(
                    f"skeleton/relay/{self.rs_names[rs_id]}/occupancy")
                for level, count in enumerate(counts):
                    if count:
                        hist.observe(level, count)
            for b_id, counts in enumerate(self.bridge_occupancy_counts):
                hist = registry.histogram(
                    f"skeleton/bridge/{self.bridge_names[b_id]}"
                    f"/occupancy")
                for level, count in enumerate(counts):
                    if count:
                        hist.observe(level, count)
        return registry.snapshot()

    # -- analysis-level driver ------------------------------------------------

    def run(self, max_cycles: int = 10_000) -> SkeletonResult:
        """Simulate until the state becomes periodic (or *max_cycles*).

        The paper's key observation — after a system-dependent transient
        every part of the system behaves periodically — guarantees
        termination: the composite register state is finite, so a state
        must repeat.
        """
        seen: Dict[Tuple, int] = {self.state(): 0}
        transient = period = None
        for _ in range(max_cycles):
            self.step()
            snapshot = self.state()
            if snapshot in seen:
                transient = seen[snapshot]
                period = self.cycle - transient
                break
            seen[snapshot] = self.cycle
        if period is None:
            from ..errors import PeriodicityTimeout

            raise PeriodicityTimeout(
                f"{self.graph.name}: no periodicity within {max_cycles} "
                f"cycles (state space larger than expected)",
                graph=self.graph.name, max_cycles=max_cycles,
            )

        window = self.fire_history[transient:transient + period]
        shell_fires = {
            name: sum(1 for fires in window if fires[i])
            for i, name in enumerate(self.shell_names)
        }
        accept_window = self.accept_history[transient:transient + period]
        sink_accepts = {
            name: sum(1 for acc in accept_window if acc[i])
            for i, name in enumerate(self.sink_names)
        }
        deadlocked = bool(self.shell_names) and all(
            count == 0 for count in shell_fires.values()
        )
        potential = self.ambiguous_cycles[0] if self.ambiguous_cycles else None
        return SkeletonResult(
            transient=transient,
            period=period,
            shell_fires=shell_fires,
            sink_accepts=sink_accepts,
            cycles_run=self.cycle,
            deadlocked=deadlocked,
            potential_deadlock_cycle=potential,
        )

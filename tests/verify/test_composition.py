"""Tests for compositional chain verification."""

import pytest

from repro.lid.variant import ProtocolVariant
from repro.verify.composition import verify_all_chains, verify_chain


class TestSingleStations:
    @pytest.mark.parametrize("kind", ["full", "half", "half-registered"])
    def test_singleton_chain_matches_block_campaign(self, kind):
        assert verify_chain([kind]).holds


class TestChains:
    @pytest.mark.parametrize("kinds", [
        ["full", "full"],
        ["full", "half"],
        ["half", "full"],
        ["half", "half"],
        ["full", "half", "full"],
        ["half", "half", "half"],
        ["half-registered", "full", "half"],
    ])
    def test_chain_preserves_contract(self, kinds):
        result = verify_chain(kinds)
        assert result.holds, result.counterexample and \
            result.counterexample.render()

    @pytest.mark.parametrize("kinds", [
        ["full", "full"],
        ["half", "half"],
    ])
    def test_chains_under_original_protocol(self, kinds):
        assert verify_chain(kinds, ProtocolVariant.CARLONI).holds

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            verify_chain([])

    def test_unknown_station_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown station kind"):
            verify_chain(["bogus"])

    def test_state_space_grows_with_length(self):
        short = verify_chain(["full"])
        long = verify_chain(["full", "full", "full"])
        assert long.states_explored > short.states_explored


class TestExhaustiveSweep:
    def test_all_pairs_pass(self):
        results = verify_all_chains(max_length=2)
        assert len(results) == 3 + 9
        assert all(res.holds for _combo, res in results)

    def test_all_triples_pass(self):
        results = verify_all_chains(max_length=3)
        assert len(results) == 3 + 9 + 27
        assert all(res.holds for _combo, res in results)


class TestShellHeadedChains:
    @pytest.mark.parametrize("kinds", [
        ["full"],
        ["half"],
        ["full", "half"],
        ["half", "full"],
        ["half-registered", "full"],
        ["full", "full", "half"],
    ])
    def test_shell_plus_fabric_preserves_contract(self, kinds):
        from repro.verify.composition import verify_shell_chain

        result = verify_shell_chain(kinds)
        assert result.holds, result.counterexample and \
            result.counterexample.render()

    def test_shell_chain_under_original_protocol(self):
        from repro.verify.composition import verify_shell_chain

        result = verify_shell_chain(["full"],
                                    ProtocolVariant.CARLONI)
        assert result.holds

    def test_mutated_shell_hold_detected(self, monkeypatch):
        """Break the hold in the shell logic via the variant hook and
        watch it surface at the chain's tail."""
        from repro.lid.variant import ProtocolVariant as PV
        from repro.verify.composition import verify_shell_chain

        monkeypatch.setattr(
            PV, "output_blocked",
            lambda self, stop, valid: False)  # shell ignores stops
        result = verify_shell_chain(["full"])
        assert not result.holds


class TestMutationCaught:
    def test_broken_middle_station_detected(self, monkeypatch):
        """A corrupted station anywhere in the chain surfaces at the
        tail monitors — composition does not mask local bugs."""
        from repro.verify import fsm

        original = fsm.half_rs_step

        def broken(state, in_tok, stop_in, variant=None,
                   registered_stop=False):
            nxt = original(state, in_tok, stop_in,
                           variant or ProtocolVariant.CASU,
                           registered_stop)
            if nxt.main is not None:
                return fsm.HalfRsState(main=(nxt.main * 3) % 8)
            return nxt

        monkeypatch.setattr(fsm, "half_rs_step", broken)
        result = verify_chain(["full", "half", "full"])
        assert not result.holds
        assert result.counterexample is not None

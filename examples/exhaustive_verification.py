#!/usr/bin/env python3
"""The whole verification stack, on one page.

The paper verified safety per block with SMV and admitted liveness
"couldn't be verified formally ... as such".  This example runs the
reproduction's four verification layers end to end:

1. per-block safety (the paper's six properties, exhaustively);
2. compositional chains (relay stations and shell-headed chains);
3. temporal-logic checks (hold-on-stop as G(p -> X q), recurrence of
   emission as G F p);
4. exhaustive system-level liveness over ALL environment behaviours —
   the check the paper could not do.

Run:  python examples/exhaustive_verification.py
"""

from repro.graph import figure1, figure2, ring
from repro.lid.variant import ProtocolVariant
from repro.verify import (
    eventually_emits,
    held_token_reappears,
    results_table,
    verify_all,
    verify_all_chains,
    verify_shell_chain,
    verify_system_liveness,
)


def main() -> None:
    print("=" * 72)
    print("LAYER 1 - block safety (the paper's SMV campaign)")
    print("=" * 72)
    rows = verify_all()
    print(results_table(rows))
    assert all(r.holds for r in rows)

    print()
    print("=" * 72)
    print("LAYER 2 - composition (chains keep the contract end to end)")
    print("=" * 72)
    chains = verify_all_chains(max_length=3)
    states = sum(r.states_explored for _c, r in chains)
    print(f"{len(chains)} relay chains up to length 3: all "
          f"{'PASS' if all(r.holds for _c, r in chains) else 'FAIL'} "
          f"({states} product states)")
    shell_chain = verify_shell_chain(["full", "half"])
    print(f"shell -> full -> half chain: "
          f"{'PASS' if shell_chain.holds else 'FAIL'} "
          f"({shell_chain.states_explored} states)")
    assert shell_chain.holds

    print()
    print("=" * 72)
    print("LAYER 3 - temporal logic")
    print("=" * 72)
    for kind in ("full", "half", "half-registered"):
        hold = held_token_reappears(kind)
        emit = eventually_emits(kind)
        print(f"{kind:16s} {hold.formula}: "
              f"{'PASS' if hold.holds else 'FAIL'}   "
              f"G F emits: {'PASS' if emit.holds else 'FAIL'}")
        assert hold.holds and emit.holds

    print()
    print("=" * 72)
    print("LAYER 4 - exhaustive liveness (all environments)")
    print("=" * 72)
    cases = [
        ("figure 1", figure1(), ProtocolVariant.CASU),
        ("figure 2", figure2(), ProtocolVariant.CASU),
        ("half-station loop, refined protocol",
         ring(2, relays_per_arc=[["half"], ["full"]]),
         ProtocolVariant.CASU),
        ("half-station loop, original protocol",
         ring(2, relays_per_arc=[["half"], ["full"]]),
         ProtocolVariant.CARLONI),
    ]
    for label, graph, variant in cases:
        result = verify_system_liveness(graph, variant=variant)
        verdict = ("LIVE for all environments"
                   if result.live else "reachable STUCK state")
        print(f"{label:42s} {verdict} "
              f"({result.reachable_states} states, "
              f"{result.ambiguous_states} ambiguous)")
    print()
    print("the half-station loop is the paper's hazard class: the")
    print("refined protocol is PROVED immune (token conservation keeps")
    print("the stop cycle from ever self-sustaining), while the")
    print("original stop discipline wedges immediately — which is why")
    print("the paper pairs half relay stations with its refinement.")


if __name__ == "__main__":
    main()

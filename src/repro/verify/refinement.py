"""Refinement checking: three descriptions of one block, kept honest.

Each protocol block exists at three levels in this repository:

1. the **spec FSM** (:mod:`repro.verify.fsm`) — what the model checker
   explores;
2. the **behavioural component** (:mod:`repro.lid`) — what systems
   simulate;
3. the **gate-level netlist** (:mod:`repro.rtl`) — what the VHDL
   emitter exports.

This module provides the lockstep co-simulation drivers that tie them
together, as library functions (the test suite wraps them; users adding
or modifying a block get the same machinery).  A check replays a long
pseudo-random legal environment trace — offers honouring the hold
contract, arbitrary downstream stops — and compares every observable
wire on every cycle; the first divergence is reported with its cycle
and signal values.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Optional, Tuple

from ..kernel.component import Component
from ..kernel.scheduler import Simulator
from ..lid.channel import Channel
from ..lid.relay import HalfRelayStation, RelayStation
from ..lid.token import Token, VOID
from ..lid.variant import DEFAULT_VARIANT, ProtocolVariant
from . import fsm


class ScriptedUpstream(Component):
    """A law-abiding producer replaying an offer script.

    Presents token k when the script says "offer"; holds the token (and
    keeps presenting it) while the downstream stop is asserted, exactly
    as the environment contract requires.
    """

    def __init__(self, name: str, chan: Channel, offers: List[bool]):
        super().__init__(name)
        self.chan = chan
        self.offers = offers
        self.k = 0
        self.index = 0
        self.presented: Token = VOID

    def reset(self) -> None:
        self.k = 0
        self.index = 0
        self.presented = VOID

    def publish(self) -> None:
        if not self.presented.valid:
            offer = self.offers[self.index % len(self.offers)]
            self.presented = Token(self.k) if offer else VOID
        self.chan.drive(self.presented)

    def tick(self) -> None:
        stopped = self.chan.stop_asserted()
        if self.presented.valid and not stopped:
            self.k += 1
            self.presented = VOID
        self.index += 1


class ScriptedDownstream(Component):
    """A consumer replaying a stop script."""

    def __init__(self, name: str, chan: Channel, stops: List[bool]):
        super().__init__(name)
        self.chan = chan
        self.stops = stops
        self.index = 0

    def reset(self) -> None:
        self.index = 0

    def publish(self) -> None:
        if self.stops[self.index % len(self.stops)]:
            self.chan.set_stop(True)

    def tick(self) -> None:
        self.index += 1


@dataclasses.dataclass
class RefinementResult:
    """Verdict of one lockstep co-simulation."""

    block: str
    levels: str
    equivalent: bool
    cycles: int
    divergence: Optional[Dict[str, Any]] = None

    def __bool__(self) -> bool:
        return self.equivalent


def random_scripts(seed: int, length: int = 400,
                   offer_bias: float = 0.7,
                   stop_bias: float = 0.4) -> Tuple[List[bool], List[bool]]:
    """Reproducible pseudo-random environment scripts."""
    rng = random.Random(seed)
    offers = [rng.random() < offer_bias for _ in range(length)]
    stops = [rng.random() < stop_bias for _ in range(length)]
    return offers, stops


def _station_factory(kind: str, variant: ProtocolVariant):
    if kind == "full":
        return RelayStation("dut", variant=variant)
    if kind == "half":
        return HalfRelayStation("dut", variant=variant)
    if kind == "half-registered":
        return HalfRelayStation("dut", variant=variant,
                                registered_stop=True)
    raise ValueError(f"unknown station kind {kind!r}")


def cosimulate_relay_spec(
    kind: str,
    seed: int = 0,
    cycles: int = 400,
    variant: ProtocolVariant = DEFAULT_VARIANT,
) -> RefinementResult:
    """Behavioural relay station vs spec FSM, in lockstep."""
    offers, stops = random_scripts(seed, cycles)
    sim = Simulator()
    chan_in = Channel.create(sim, "in")
    chan_out = Channel.create(sim, "out")
    station = _station_factory(kind, variant)
    station.connect(chan_in, chan_out)
    sim.add_component(ScriptedUpstream("up", chan_in, offers))
    sim.add_component(station)
    sim.add_component(ScriptedDownstream("down", chan_out, stops))
    sim.reset()

    registered = kind == "half-registered"
    is_full = kind == "full"
    spec_state: Any = fsm.FullRsState() if is_full else fsm.HalfRsState()

    for cycle in range(cycles):
        sim._settle()
        if is_full:
            out_tok, stop_out = fsm.full_rs_outputs(spec_state)
        else:
            out_tok = spec_state.main
            stop_out = fsm.half_rs_stop_out(
                spec_state, chan_out.stop_asserted(), variant, registered)
        observed = {
            "out_valid": bool(chan_out.valid.value),
            "out_data": chan_out.data.value,
            "stop_up": bool(chan_in.stop.value),
        }
        expected = {
            "out_valid": out_tok is not None,
            "out_data": out_tok,
            "stop_up": bool(stop_out),
        }
        if observed["out_valid"] != expected["out_valid"] or \
                (expected["out_valid"]
                 and observed["out_data"] != expected["out_data"]) or \
                observed["stop_up"] != expected["stop_up"]:
            return RefinementResult(
                block=f"{kind} ({variant})",
                levels="behavioural vs spec",
                equivalent=False,
                cycles=cycle,
                divergence={"cycle": cycle, "observed": observed,
                            "expected": expected},
            )
        in_tok = chan_in.read()
        stop_in = chan_out.stop_asserted()
        payload = in_tok.value if in_tok.valid else None
        if is_full:
            spec_state = fsm.full_rs_step(spec_state, payload, stop_in,
                                          variant)
        else:
            spec_state = fsm.half_rs_step(spec_state, payload, stop_in,
                                          variant, registered)
        for comp in sim.components:
            comp.tick()
        sim.cycle += 1
    return RefinementResult(
        block=f"{kind} ({variant})",
        levels="behavioural vs spec",
        equivalent=True,
        cycles=cycles,
    )


def cosimulate_relay_netlist(
    kind: str,
    seed: int = 0,
    cycles: int = 400,
    variant: ProtocolVariant = DEFAULT_VARIANT,
    width: int = 8,
) -> RefinementResult:
    """Spec FSM vs gate-level netlist, in lockstep."""
    from ..rtl import (
        NetlistSimulator,
        full_relay_station_netlist,
        half_relay_station_netlist,
    )

    if kind == "half-registered":
        raise ValueError("no netlist exists for the ablation variant")
    is_full = kind == "full"
    netlist = (full_relay_station_netlist(width) if is_full
               else half_relay_station_netlist(width, variant))
    netsim = NetlistSimulator(netlist)
    spec_state: Any = fsm.FullRsState() if is_full else fsm.HalfRsState()
    rng = random.Random(seed)
    k = 1
    for cycle in range(cycles):
        offer = rng.random() < 0.7
        stop_in = rng.random() < 0.4
        outs = netsim.settle({
            "in_data": k if offer else 0,
            "in_valid": int(offer),
            "stop_in": int(stop_in),
        })
        if is_full:
            out_tok, stop_out = fsm.full_rs_outputs(spec_state)
        else:
            out_tok = spec_state.main
            stop_out = fsm.half_rs_stop_out(spec_state, stop_in, variant)
        ok = (outs["out_valid"] == int(out_tok is not None)
              and (out_tok is None or outs["out_data"] == out_tok)
              and outs["stop_out"] == int(stop_out))
        if not ok:
            return RefinementResult(
                block=f"{kind} ({variant})",
                levels="spec vs netlist",
                equivalent=False,
                cycles=cycle,
                divergence={"cycle": cycle, "netlist": dict(outs),
                            "spec": (out_tok, stop_out)},
            )
        accepted = offer and not stop_out
        payload = k if offer else None
        if is_full:
            accepted = offer and not spec_state.stop_reg
            spec_state = fsm.full_rs_step(spec_state, payload, stop_in,
                                          variant)
        else:
            spec_state = fsm.half_rs_step(spec_state, payload, stop_in,
                                          variant)
        netsim.tick()
        if accepted:
            k = (k % 200) + 1
    return RefinementResult(
        block=f"{kind} ({variant})",
        levels="spec vs netlist",
        equivalent=True,
        cycles=cycles,
    )


def check_refinement_stack(
    seeds: Tuple[int, ...] = (0, 1, 2),
    cycles: int = 300,
) -> List[RefinementResult]:
    """The full campaign: every station kind, both variants, both pairs
    of levels, several seeds."""
    results: List[RefinementResult] = []
    for variant in ProtocolVariant:
        for kind in ("full", "half", "half-registered"):
            for seed in seeds:
                results.append(cosimulate_relay_spec(
                    kind, seed, cycles, variant))
        for kind in ("full", "half"):
            for seed in seeds:
                results.append(cosimulate_relay_netlist(
                    kind, seed, cycles, variant))
    return results

"""EXP-R1: fault-injection campaign on the feedback topology.

The robustness claim behind the fault-injection subsystem: on the
paper's feedback example (figure 2), the Casu shell stack *with the
strict stop-shape monitor* detects at least as many stop/void wire
faults as the original Carloni stack lets through as silent
corruption.  Stops-on-void are illegal under the Casu discipline, so a
faulted stop wire has a shape a monitor can reject; under Carloni the
same faulted wire is indistinguishable from legitimate back-pressure
and the corruption it causes surfaces only in the data streams.

The bench runs the same deterministic fault list (seed 7, 48 samples
over 100 cycles) through both variants and asserts

    detected(CASU, strict) >= silent_corruption(CARLONI)

then emits a ``BENCH_EXP-R1-inject-campaign.json`` record.  Like
EXP-O1 this is a standalone contract bench: it is not part of the
EXPERIMENTS registry, so the golden campaign table is untouched.
"""

import os
from time import perf_counter

from repro.bench.tables import format_table
from repro.exec import GraphRef, ResultCache
from repro.graph import figure2
from repro.inject import VERDICTS, run_campaign
from repro.lid.variant import ProtocolVariant

CYCLES = 100
SAMPLES = 48
SEED = 7
CLASSES = ("stop", "void")

# EXP-P1 parallel campaign shape: enough independent experiments that
# process fan-out amortises worker startup.
P1_FAULTS = 192
P1_JOBS = 4


def _campaign(variant, strict):
    graph = figure2()
    return run_campaign(
        graph, variant=variant, classes=CLASSES, cycles=CYCLES,
        samples=SAMPLES, seed=SEED, strict=strict)


def test_bench_inject_campaign(benchmark, emit):
    started = perf_counter()
    casu = _campaign(ProtocolVariant.CASU, strict=True)
    carloni = _campaign(ProtocolVariant.CARLONI, strict=False)
    wall = perf_counter() - started
    benchmark.pedantic(_campaign, args=(ProtocolVariant.CASU, True),
                       rounds=1, iterations=1)

    casu_counts = casu.counts()
    carloni_counts = carloni.counts()
    detected = casu_counts["detected"]
    silent = carloni_counts["silent-corruption"]
    assert detected >= silent, (
        f"strict Casu stack detected {detected} faults but Carloni "
        f"silently corrupted {silent}: the robustness claim regressed")
    # Both campaigns classify the identical fault list, so totals agree.
    assert sum(casu_counts.values()) == sum(carloni_counts.values())

    rows = [
        (f"{name}", *[str(counts[v]) for v in VERDICTS])
        for name, counts in (
            ("casu (strict monitor)", casu_counts),
            ("carloni", carloni_counts),
        )
    ]
    table = format_table(
        ("stack", *VERDICTS),
        rows,
        title=f"Fault campaign on figure2 feedback loop "
              f"({SAMPLES} stop/void faults, {CYCLES} cycles, "
              f"seed {SEED}): strict Casu detects >= Carloni's "
              f"silent corruption",
    )
    emit("EXP-R1-inject-campaign", table, rows=rows,
         wall_seconds=wall,
         params={"cycles": CYCLES, "samples": SAMPLES, "seed": SEED,
                 "classes": list(CLASSES), "topology": "figure2"},
         counters={"casu_detected": detected,
                   "carloni_silent_corruption": silent,
                   "casu_masked": casu_counts["masked"],
                   "carloni_masked": carloni_counts["masked"],
                   "experiments": len(casu.results)})


def _p1_campaign(jobs, cache=None):
    """The EXP-P1 campaign: >=192 sampled faults on figure2."""
    graph = figure2()
    return run_campaign(
        graph, variant=ProtocolVariant.CASU, classes=CLASSES,
        cycles=CYCLES, samples=P1_FAULTS, seed=SEED, strict=True,
        jobs=jobs, graph_ref=GraphRef.from_spec("figure2"), cache=cache)


def test_bench_parallel_campaign(benchmark, emit, tmp_path):
    """EXP-P1: --jobs fan-out is byte-exact, and fast where it can be.

    The determinism contract is asserted unconditionally: the jobs=4
    report must be byte-identical to the serial one.  The >=3x speedup
    assertion only fires on machines with >= 4 cores — on fewer cores
    process fan-out is pure overhead and the measured ratio is reported
    in the record without being enforced.  The golden-run cache is
    exercised cold/warm with a shape where the golden run is a third of
    the serial work (2 faults x 800 cycles), so the warm run is
    measurably faster, not just a counter tick.
    """
    started = perf_counter()
    serial = _p1_campaign(jobs=1)
    serial_wall = perf_counter() - started
    started = perf_counter()
    parallel = _p1_campaign(jobs=P1_JOBS)
    parallel_wall = perf_counter() - started
    benchmark.pedantic(_p1_campaign, kwargs={"jobs": 1},
                       rounds=1, iterations=1)

    serial_json = serial.to_json()
    assert len(serial.results) >= P1_FAULTS
    assert parallel.to_json() == serial_json, (
        "jobs=4 report differs from the serial report: the "
        "deterministic-merge contract regressed")
    assert serial.execution["jobs"] == 1
    assert parallel.execution["jobs"] == P1_JOBS

    cores = os.cpu_count() or 1
    speedup = serial_wall / parallel_wall if parallel_wall else 0.0
    if cores >= P1_JOBS:
        assert speedup >= 3.0, (
            f"jobs={P1_JOBS} on {cores} cores only reached "
            f"{speedup:.2f}x over serial (expected >= 3x)")

    # Golden-run cache: cold run populates, warm run must hit and win.
    cache_dir = str(tmp_path / "cache")

    def _cached_campaign():
        cache = ResultCache.disk(cache_dir)
        graph = figure2()
        report = run_campaign(
            graph, variant=ProtocolVariant.CASU, classes=CLASSES,
            cycles=800, samples=2, seed=SEED, strict=True, cache=cache)
        return report, cache.stats

    started = perf_counter()
    cold_report, cold_stats = _cached_campaign()
    cold_wall = perf_counter() - started
    started = perf_counter()
    warm_report, warm_stats = _cached_campaign()
    warm_wall = perf_counter() - started
    assert cold_stats.misses == 1 and cold_stats.hits == 0
    assert warm_stats.hits > 0, "second invocation missed the cache"
    assert warm_report.to_json() == cold_report.to_json()
    assert warm_wall < cold_wall, (
        f"cache-warm campaign ({warm_wall:.3f}s) was not faster than "
        f"the cold one ({cold_wall:.3f}s)")

    rows = [
        ("serial (jobs=1)", f"{serial_wall:.3f}s", "-"),
        (f"parallel (jobs={P1_JOBS})", f"{parallel_wall:.3f}s",
         f"{speedup:.2f}x"),
        ("cache cold", f"{cold_wall:.3f}s", "-"),
        ("cache warm", f"{warm_wall:.3f}s",
         f"{cold_wall / warm_wall:.2f}x"),
    ]
    table = format_table(
        ("run", "wall", "speedup"),
        rows,
        title=f"Parallel campaign determinism and caching "
              f"({len(serial.results)} faults, {CYCLES} cycles, "
              f"seed {SEED}, {cores} cores; reports byte-identical "
              f"across jobs values)",
    )
    emit("EXP-P1-parallel-campaign", table, rows=rows,
         wall_seconds=serial_wall + parallel_wall + cold_wall + warm_wall,
         params={"cycles": CYCLES, "faults": len(serial.results),
                 "jobs": P1_JOBS, "seed": SEED, "cores": cores,
                 "topology": "figure2",
                 "serial_wall_seconds": serial_wall,
                 "parallel_wall_seconds": parallel_wall,
                 "cold_wall_seconds": cold_wall,
                 "warm_wall_seconds": warm_wall,
                 "speedup_enforced": cores >= P1_JOBS},
         counters={"experiments": len(serial.results),
                   "byte_identical": 1,
                   "cache_hits_warm": warm_stats.hits,
                   "speedup_x100": int(speedup * 100)})

"""Two-phase synchronous simulation scheduler.

The kernel models single-clock RTL with a *settle / edge* discipline:

1. **Publish** — every component drives its Moore outputs (register
   contents).  These are constant for the rest of the cycle.
2. **Settle** — components' combinational (Mealy) functions are evaluated
   repeatedly until no signal changes.  In a latency-insensitive design
   the only Mealy nets are the backward ``stop`` wires, whose equations
   are monotone; the fixpoint therefore exists and is reached in at most
   ``len(components)`` passes.  Failure to converge within the bound
   raises :class:`~repro.errors.ConvergenceError`.
3. **Edge** — every component samples the settled values and updates its
   registers simultaneously.

Fault injection (:mod:`repro.inject`) adds two optional phases that are
completely inert when no injector is attached:

* **wire injection** — hooks run after the settle fixpoint but before
  the cycle hooks, so they may overwrite settled wire values (a glitch
  or stuck-at near the sampling edge).  Cycle hooks — including the
  protocol monitors — and the edge phase then observe the faulted
  values, which is exactly what lets a monitor *detect* the fault.
* **state injection** — hooks run after the edge phase, so they may
  corrupt freshly latched registers (an SEU in a flip-flop); the
  corruption becomes visible at the next cycle's publish.

This discipline is semantics-preserving for the VHDL/event-driven
simulation the paper used, because all the paper's blocks are synchronous
FSMs on one clock (see DESIGN.md §2).
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..errors import ConvergenceError
from .component import Component
from .signal import Signal

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Telemetry


class Simulator:
    """Owns signals and components and advances time cycle by cycle.

    A :class:`~repro.obs.Telemetry` handle may be attached with
    :meth:`attach_telemetry`; its profiler then receives per-phase wall
    times (``publish+settle`` / ``hooks`` / ``edge``) and cycle counts.
    Without telemetry (the default) the step loop is untouched.
    """

    def __init__(self, name: str = "sim"):
        self.name = name
        self.cycle = 0
        self._components: List[Component] = []
        self._signals: List[Signal] = []
        self._signal_index: Dict[str, Signal] = {}
        self._cycle_hooks: List[Callable[["Simulator"], None]] = []
        self._inject_wire_hooks: List[Callable[["Simulator"], None]] = []
        self._inject_state_hooks: List[Callable[["Simulator"], None]] = []
        self._was_reset = False
        self.settle_passes_total = 0
        self.telemetry: Optional["Telemetry"] = None

    # -- construction ----------------------------------------------------

    def add_component(self, component: Component) -> Component:
        """Register a component; returns it for chaining."""
        self._components.append(component)
        component.attached(self)
        return component

    def signal(self, name: str, default=None, sticky: bool = False) -> Signal:
        """Create (or fetch, if it exists) a named signal."""
        existing = self._signal_index.get(name)
        if existing is not None:
            return existing
        sig = Signal(name, default=default, sticky=sticky)
        self._signals.append(sig)
        self._signal_index[name] = sig
        return sig

    def find_signal(self, name: str) -> Optional[Signal]:
        """Look up a signal by exact name, or ``None``."""
        return self._signal_index.get(name)

    def add_cycle_hook(self, hook: Callable[["Simulator"], None]) -> None:
        """Run *hook(sim)* after the settle phase of every cycle.

        Hooks see fully settled signal values before the clock edge; this
        is where traces and runtime protocol monitors sample.
        """
        self._cycle_hooks.append(hook)

    def add_injection_hook(
        self,
        hook: Callable[["Simulator"], None],
        phase: str = "wire",
    ) -> None:
        """Register a fault-injection hook (see :mod:`repro.inject`).

        ``phase="wire"`` hooks run after the settle fixpoint and before
        the cycle hooks: they may overwrite settled signal values, and
        monitors sample the faulted wires.  ``phase="state"`` hooks run
        after the edge phase: they may corrupt registers as they latch.
        With no hooks registered both call sites are a single falsy
        branch per cycle.
        """
        if phase == "wire":
            self._inject_wire_hooks.append(hook)
        elif phase == "state":
            self._inject_state_hooks.append(hook)
        else:
            raise ValueError(f"unknown injection phase {phase!r}")

    def attach_telemetry(self, telemetry: "Telemetry") -> None:
        """Route phase timings and events through *telemetry*.

        Components read :attr:`telemetry` lazily, so attaching before
        or after construction is equally fine; attach before
        :meth:`step` for complete phase accounting.
        """
        self.telemetry = telemetry

    # -- execution -------------------------------------------------------

    def reset(self) -> None:
        """Reset all components; must be called before :meth:`step`."""
        self.cycle = 0
        for comp in self._components:
            comp.reset()
        self._was_reset = True

    def _settle(self) -> None:
        for sig in self._signals:
            sig.reset_for_settle()
        for comp in self._components:
            comp.publish()
        # Publishing counts as the initial assignment; clear change flags
        # so the fixpoint loop measures only Mealy activity.
        for sig in self._signals:
            sig.consume_changed()
        max_passes = len(self._components) + 2
        for _ in range(max_passes):
            for comp in self._components:
                comp.settle()
            self.settle_passes_total += 1
            if not any(sig.consume_changed() for sig in self._signals):
                return
        raise ConvergenceError(
            f"settle phase did not converge within {max_passes} passes at "
            f"cycle {self.cycle}; a combinational function is not monotone "
            f"or a combinational loop escaped the structural lint"
        )

    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by *cycles* clock cycles."""
        if not self._was_reset:
            self.reset()
        telemetry = self.telemetry
        profiler = telemetry.profiler if telemetry is not None else None
        if profiler is not None:
            return self._step_profiled(cycles, profiler)
        for _ in range(cycles):
            self._settle()
            if self._inject_wire_hooks:
                for hook in self._inject_wire_hooks:
                    hook(self)
            for hook in self._cycle_hooks:
                hook(self)
            for comp in self._components:
                comp.tick()
            if self._inject_state_hooks:
                for hook in self._inject_state_hooks:
                    hook(self)
            self.cycle += 1

    def _step_profiled(self, cycles: int, profiler) -> None:
        """The same loop as :meth:`step`, with per-phase wall timing."""
        settle_s = hooks_s = edge_s = 0.0
        for _ in range(cycles):
            t0 = perf_counter()
            self._settle()
            if self._inject_wire_hooks:
                for hook in self._inject_wire_hooks:
                    hook(self)
            t1 = perf_counter()
            for hook in self._cycle_hooks:
                hook(self)
            t2 = perf_counter()
            for comp in self._components:
                comp.tick()
            if self._inject_state_hooks:
                for hook in self._inject_state_hooks:
                    hook(self)
            t3 = perf_counter()
            settle_s += t1 - t0
            hooks_s += t2 - t1
            edge_s += t3 - t2
            self.cycle += 1
        profiler.add("publish+settle", settle_s, calls=cycles)
        profiler.add("hooks", hooks_s, calls=cycles)
        profiler.add("edge", edge_s, calls=cycles)
        profiler.note_cycles(cycles)
        events = self.telemetry.events
        if events is not None:
            profiler.events = events.emitted

    def run_until(
        self,
        predicate: Callable[["Simulator"], bool],
        max_cycles: int = 100_000,
    ) -> int:
        """Step until *predicate(sim)* is true after a settle phase.

        Returns the cycle number at which the predicate first held.
        Raises ``TimeoutError`` if *max_cycles* elapse first.
        """
        if not self._was_reset:
            self.reset()
        for _ in range(max_cycles):
            self._settle()
            if self._inject_wire_hooks:
                for hook in self._inject_wire_hooks:
                    hook(self)
            for hook in self._cycle_hooks:
                hook(self)
            hit = predicate(self)
            for comp in self._components:
                comp.tick()
            if self._inject_state_hooks:
                for hook in self._inject_state_hooks:
                    hook(self)
            self.cycle += 1
            if hit:
                return self.cycle - 1
        raise TimeoutError(
            f"predicate not satisfied within {max_cycles} cycles of {self.name}"
        )

    # -- introspection ---------------------------------------------------

    @property
    def components(self) -> List[Component]:
        return list(self._components)

    @property
    def signals(self) -> List[Signal]:
        return list(self._signals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator({self.name!r}, cycle={self.cycle}, "
            f"components={len(self._components)}, signals={len(self._signals)})"
        )

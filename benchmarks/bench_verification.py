"""EXP-V1: the formal-verification campaign (SMV substitute).

Paper: safety checked per block with SMV — shells elaborate coherent
data, produce outputs in order, skip no valid output; relay stations
produce outputs in order, skip no valid output, hold their output on
asserted stops — each under the stated environment assumption.
"""

import pytest

from repro.lid.variant import ProtocolVariant
from repro.verify import (
    check_progress,
    results_table,
    verify_all,
    verify_relay_station,
    verify_shell,
)


def test_bench_full_campaign(benchmark, emit):
    rows = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    emit("EXP-V1-verification", results_table(rows))
    assert all(r.holds for r in rows)
    assert len(rows) >= 17


def test_bench_shell_2x2(benchmark):
    def run():
        return verify_shell(2, 2)

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    assert all(r.holds for r in rows)


def test_bench_full_relay_station(benchmark):
    def run():
        return verify_relay_station("full")

    rows = benchmark(run)
    assert all(r.holds for r in rows)


def test_bench_half_relay_station(benchmark):
    def run():
        return verify_relay_station("half")

    rows = benchmark(run)
    assert all(r.holds for r in rows)


def test_bench_carloni_variant_also_safe(benchmark):
    """The original protocol is slower, not unsafe: all block-level
    safety properties hold for it too."""

    def run():
        rows = []
        rows += verify_shell(1, 1, ProtocolVariant.CARLONI)
        rows += verify_relay_station("full", ProtocolVariant.CARLONI)
        rows += verify_relay_station("half", ProtocolVariant.CARLONI)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r.holds for r in rows)


def test_bench_progress_checks(benchmark):
    def run():
        return [check_progress(kind)
                for kind in ("full", "half", "half-registered")]

    results = benchmark(run)
    assert all(r.holds for r in results)


def test_bench_refinement_stack(benchmark, emit):
    """Spec <-> behavioural <-> gate level, co-simulated in lockstep."""
    from repro.bench.tables import format_table
    from repro.verify import check_refinement_stack

    def run():
        return check_refinement_stack(seeds=(0, 1), cycles=250)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (r.block, r.levels,
         "EQUIVALENT" if r.equivalent else "DIVERGED", r.cycles)
        for r in results
    ]
    emit("EXP-V1-refinement", format_table(
        ("block", "levels", "verdict", "cycles"), rows,
        title="Refinement stack: one behaviour at three abstraction "
              "levels"))
    assert all(r.equivalent for r in results)


def test_bench_compositional_chains(benchmark, emit):
    """Every relay chain up to length 3, plus shell-headed chains."""
    import itertools

    from repro.bench.tables import format_table
    from repro.verify import verify_all_chains, verify_shell_chain

    def run():
        chain_results = verify_all_chains(max_length=3)
        shell_results = []
        for combo in itertools.product(("full", "half"), repeat=2):
            shell_results.append(
                (("shell",) + combo, verify_shell_chain(combo)))
        return chain_results + shell_results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (" -> ".join(combo), "PASS" if res.holds else "FAIL",
         res.states_explored)
        for combo, res in results
    ]
    emit("EXP-V1-chains", format_table(
        ("composition", "verdict", "states"), rows,
        title="Compositional verification: chains and shell-headed "
              "chains, end-to-end contracts"))
    assert all(res.holds for _combo, res in results)

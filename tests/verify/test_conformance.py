"""Refinement check: the verified spec FSMs match the simulation RTL.

The model checker explores :mod:`repro.verify.fsm`; the simulator runs
:mod:`repro.lid`.  These tests replay long pseudo-random environment
traces through *both* and require lockstep agreement on every output
wire — so the properties proven on the specs transfer to the code that
actually simulates (and, via ``tests/rtl``, to the gate level too).
"""

import pytest

from repro.kernel.scheduler import Simulator
from repro.lid.channel import Channel
from repro.lid.relay import HalfRelayStation, RelayStation
from repro.lid.variant import ProtocolVariant
from repro.verify import fsm

# The lockstep drivers live in the library so users extending a block
# get the same machinery; these tests exercise them directly.
from repro.verify.refinement import (
    ScriptedDownstream,
    ScriptedUpstream,
    random_scripts,
)


def make_harness(station_factory, offers, stops):
    sim = Simulator()
    chan_in = Channel.create(sim, "in")
    chan_out = Channel.create(sim, "out")
    station = station_factory()
    station.connect(chan_in, chan_out)
    up = ScriptedUpstream("up", chan_in, offers)
    down = ScriptedDownstream("down", chan_out, stops)
    sim.add_component(up)
    sim.add_component(station)
    sim.add_component(down)
    return sim, chan_in, chan_out, station


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("variant", list(ProtocolVariant))
class TestFullRsConformance:
    def test_lockstep_with_spec(self, seed, variant):
        offers, stops = random_scripts(seed)
        sim, chan_in, chan_out, station = make_harness(
            lambda: RelayStation("rs", variant=variant), offers, stops)
        sim.reset()
        spec = fsm.FullRsState()
        for cycle in range(len(offers)):
            sim._settle()
            out_tok, stop_out = fsm.full_rs_outputs(spec)
            assert chan_out.valid.value == (out_tok is not None), cycle
            if out_tok is not None:
                assert chan_out.data.value == out_tok, cycle
            assert chan_in.stop.value == stop_out, cycle
            in_tok = chan_in.read()
            stop_in = chan_out.stop_asserted()
            spec = fsm.full_rs_step(
                spec, in_tok.value if in_tok.valid else None,
                stop_in, variant)
            for comp in sim.components:
                comp.tick()
            sim.cycle += 1


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("variant", list(ProtocolVariant))
@pytest.mark.parametrize("registered", [False, True])
class TestHalfRsConformance:
    def test_lockstep_with_spec(self, seed, variant, registered):
        offers, stops = random_scripts(seed + 100)
        sim, chan_in, chan_out, station = make_harness(
            lambda: HalfRelayStation("rs", variant=variant,
                                     registered_stop=registered),
            offers, stops)
        sim.reset()
        spec = fsm.HalfRsState()
        for cycle in range(len(offers)):
            sim._settle()
            stop_in = chan_out.stop_asserted()
            expected_stop = fsm.half_rs_stop_out(
                spec, stop_in, variant, registered)
            assert chan_out.valid.value == (spec.main is not None), cycle
            if spec.main is not None:
                assert chan_out.data.value == spec.main, cycle
            assert chan_in.stop.value == expected_stop, cycle
            in_tok = chan_in.read()
            spec = fsm.half_rs_step(
                spec, in_tok.value if in_tok.valid else None,
                stop_in, variant, registered)
            for comp in sim.components:
                comp.tick()
            sim.cycle += 1
